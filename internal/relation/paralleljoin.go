package relation

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/govern"
)

// parallelMinInput is the combined input size below which the Parallel*
// operators fall back to their sequential counterparts; goroutine and
// partitioning overhead dominate on small inputs. Tests that must exercise
// the partitioned path on small inputs override it with
// SetParallelThreshold.
var parallelMinInput = 4096

// SetParallelThreshold overrides the combined-input-size cutoff below which
// the Parallel* operators run sequentially, and returns a function restoring
// the previous value. n <= 0 forces partitioned execution on every input. It
// mutates package state and is not synchronized against in-flight parallel
// operators — call it from test setup, not concurrently with executions.
func SetParallelThreshold(n int) (restore func()) {
	prev := parallelMinInput
	parallelMinInput = n
	return func() { parallelMinInput = prev }
}

// errParallelStopped is the internal sentinel a partition worker returns
// when it bails out because a sibling already failed; it never escapes the
// parallel operators.
var errParallelStopped = errors.New("relation: parallel worker stopped")

// ParallelJoin computes the natural join l ⋈ r using up to workers
// goroutines (0 means GOMAXPROCS). Both inputs are hash-partitioned on
// their common attributes; each partition pair is joined independently and
// the results concatenated — matching tuples always share a key, so they
// land in the same partition and the partitions' outputs are disjoint.
//
// The result equals Join(l, r) exactly. With no common attributes the left
// input is split into chunks instead (a parallel Cartesian product).
func ParallelJoin(l, r *Relation, workers int) *Relation {
	out, err := ParallelJoinGoverned(nil, l, r, workers)
	if err != nil {
		panic(err) // unreachable: a nil governor never aborts
	}
	return out
}

// ParallelJoinGoverned is ParallelJoin under a governor: the partition
// workers charge every output tuple into one shared operator scope, so
// MaxTuples and MaxIntermediateTuples bound the whole join's output exactly
// as in JoinGoverned — a successful parallel join charges the same total,
// and a budget that aborts the sequential join aborts the parallel one. On
// abort the first worker's typed error is returned and no partial result
// escapes. Inputs below the parallel threshold (and workers <= 1) run
// JoinGoverned directly.
func ParallelJoinGoverned(g *govern.Governor, l, r *Relation, workers int) (*Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || l.Len()+r.Len() < parallelMinInput {
		return JoinGoverned(g, l, r)
	}
	scope, err := g.Begin("relation.ParallelJoin")
	if err != nil {
		return nil, err
	}
	common := l.schema.AttrSet().Intersect(r.schema.AttrSet())
	if common.IsEmpty() {
		return parallelProductGoverned(scope, l, r, workers)
	}

	lPos, _ := l.schema.Positions(common)
	rPos, _ := r.schema.Positions(common)

	// Columns of r absent from l, in r's column order — the same order
	// joinSchema appends them to the output schema.
	var rOnlyPos []int
	for i, a := range r.schema.Attrs() {
		if !l.schema.Has(a) {
			rOnlyPos = append(rOnlyPos, i)
		}
	}

	lParts := partitionByKey(l.rows, lPos, workers)
	rParts := partitionByKey(r.rows, rPos, workers)
	outSchema := joinSchema(l.schema, r.schema)

	results := make([]*Relation, workers)
	err = parallelRun(workers, func(w int, stop *atomic.Bool) error {
		out := New(outSchema)
		results[w] = out
		return hashJoinInto(out, lParts[w], rParts[w], lPos, rPos, rOnlyPos,
			chargeInto(scope, stop))
	})
	if err != nil {
		return nil, err
	}
	return concatDisjoint(outSchema, results), nil
}

// ParallelSemijoinGoverned computes l ⋉ r under a governor using up to
// workers goroutines: both sides are hash-partitioned on the common
// attributes and each worker semijoins its partition pair, charging emitted
// heads into one shared operator scope. The result, the charged total, and
// the budget-abort behavior match SemijoinGoverned. With no common
// attributes (where ⋉ degenerates to "l if r nonempty") and below the
// parallel threshold it runs SemijoinGoverned directly.
func ParallelSemijoinGoverned(g *govern.Governor, l, r *Relation, workers int) (*Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	common := l.schema.AttrSet().Intersect(r.schema.AttrSet())
	if workers == 1 || common.IsEmpty() || l.Len()+r.Len() < parallelMinInput {
		return SemijoinGoverned(g, l, r)
	}
	scope, err := g.Begin("relation.ParallelSemijoin")
	if err != nil {
		return nil, err
	}
	lPos, _ := l.schema.Positions(common)
	rPos, _ := r.schema.Positions(common)
	lParts := partitionByKey(l.rows, lPos, workers)
	rParts := partitionByKey(r.rows, rPos, workers)

	results := make([]*Relation, workers)
	err = parallelRun(workers, func(w int, stop *atomic.Bool) error {
		out := New(l.schema)
		results[w] = out
		keys := make(map[string]struct{}, len(rParts[w]))
		for _, rt := range rParts[w] {
			keys[rt.keyAt(rPos)] = struct{}{}
		}
		charge := chargeInto(scope, stop)
		for _, lt := range lParts[w] {
			emitted := 0
			if _, ok := keys[lt.keyAt(lPos)]; ok {
				out.MustInsert(lt)
				emitted = 1
			}
			if err := charge(emitted); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatDisjoint(l.schema, results), nil
}

// ParallelProjectGoverned computes π_attrs(r) under a governor using up to
// workers goroutines. Rows are hash-partitioned on their projected columns,
// so all duplicates of a projected tuple land in one partition: each worker
// deduplicates its partition completely, the partition outputs are disjoint,
// and the charged total equals the deduplicated output size — identical to
// ProjectGoverned. Empty projections and inputs below the parallel threshold
// run ProjectGoverned directly.
func ParallelProjectGoverned(g *govern.Governor, r *Relation, attrs AttrSet, workers int) (*Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if !r.schema.AttrSet().ContainsAll(attrs) {
		return nil, fmt.Errorf("relation: projection attributes %s not all in schema %s",
			attrs, r.schema)
	}
	pos, _ := r.schema.Positions(attrs)
	if workers == 1 || len(pos) == 0 || r.Len() < parallelMinInput {
		return ProjectGoverned(g, r, attrs)
	}
	scope, err := g.Begin("relation.ParallelProject")
	if err != nil {
		return nil, err
	}
	outSchema := MustSchema(attrs...)
	parts := partitionByKey(r.rows, pos, workers)

	results := make([]*Relation, workers)
	err = parallelRun(workers, func(w int, stop *atomic.Bool) error {
		out := New(outSchema)
		results[w] = out
		charge := chargeInto(scope, stop)
		for _, t := range parts[w] {
			row := make(Tuple, len(pos))
			for i, p := range pos {
				row[i] = t[p]
			}
			before := out.Len()
			out.MustInsert(row)
			if err := charge(out.Len() - before); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatDisjoint(outSchema, results), nil
}

// parallelProductGoverned splits l into chunks and cross-joins each with r,
// charging output tuples into the shared scope.
func parallelProductGoverned(scope *govern.OpScope, l, r *Relation, workers int) (*Relation, error) {
	chunk := (l.Len() + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	var tasks [][]Tuple
	for i := 0; i < l.Len(); i += chunk {
		end := i + chunk
		if end > l.Len() {
			end = l.Len()
		}
		tasks = append(tasks, l.rows[i:end])
	}
	outSchema := joinSchema(l.schema, r.schema)
	// Columns of r absent from l (all of them: the schemas are disjoint
	// here), in r's column order.
	rOnlyPos := make([]int, r.schema.Len())
	for i := range rOnlyPos {
		rOnlyPos[i] = i
	}
	results := make([]*Relation, len(tasks))
	err := parallelRun(len(tasks), func(w int, stop *atomic.Bool) error {
		out := New(outSchema)
		results[w] = out
		charge := chargeInto(scope, stop)
		for _, lt := range tasks[w] {
			for _, rt := range r.rows {
				out.appendJoined(lt, rt, rOnlyPos)
				if err := charge(1); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatDisjoint(outSchema, results), nil
}

// parallelRun executes fn(w, stop) for each w in [0, n) on n goroutines and
// returns the first real error. A worker that fails sets the stop flag;
// siblings poll it via their charge callbacks and bail with
// errParallelStopped, which is swallowed here.
func parallelRun(n int, fn func(w int, stop *atomic.Bool) error) error {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
		stop  atomic.Bool
	)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := fn(w, &stop); err != nil && !errors.Is(err, errParallelStopped) {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
				stop.Store(true)
			}
		}(w)
	}
	wg.Wait()
	return first
}

// chargeInto returns a per-iteration charge callback for one partition
// worker: it stops early when a sibling failed, and otherwise charges the
// iteration's emitted tuples into the shared operator scope (polling
// cancellation like the sequential operators do).
func chargeInto(scope *govern.OpScope, stop *atomic.Bool) func(emitted int) error {
	return func(emitted int) error {
		if stop.Load() {
			return errParallelStopped
		}
		return scope.Add(emitted)
	}
}

// partitionByKey splits rows into n buckets by the FNV-32a hash of their key
// columns. The hash is inlined (rather than hash/fnv) to avoid a hasher
// allocation per row on the partitioning hot path.
func partitionByKey(rows []Tuple, pos []int, n int) [][]Tuple {
	const (
		fnvOffset32 = 2166136261
		fnvPrime32  = 16777619
	)
	parts := make([][]Tuple, n)
	var buf []byte
	for _, t := range rows {
		buf = buf[:0]
		for _, p := range pos {
			buf = t[p].appendKey(buf)
		}
		h := uint32(fnvOffset32)
		for _, b := range buf {
			h ^= uint32(b)
			h *= fnvPrime32
		}
		parts[h%uint32(n)] = append(parts[h%uint32(n)], t)
	}
	return parts
}

// concatDisjoint merges partition results whose tuple sets are pairwise
// disjoint (guaranteed by key partitioning / chunking of distinct rows), so
// rows append without re-checking the dedup map per row beyond registering
// the keys.
func concatDisjoint(schema *Schema, parts []*Relation) *Relation {
	total := 0
	for _, p := range parts {
		if p != nil {
			total += len(p.rows)
		}
	}
	rows := make([]Tuple, 0, total)
	for _, p := range parts {
		if p != nil {
			rows = append(rows, p.rows...)
		}
	}
	return &Relation{schema: schema, rows: rows}
}
