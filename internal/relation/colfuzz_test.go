package relation

import (
	"strconv"
	"strings"
	"testing"
)

// FuzzColBlockRoundTrip drives the columnar encoder with adversarial
// content: a fuzzer blob decodes into a two-column relation mixing string
// and integer values (NUL-split fields; fields parsing as integers become
// Int values, so the mixed-kind dictionary order is exercised), and the
// encode must satisfy every block invariant (Validate), round-trip back to
// the identical relation, and agree with the selection-vector path —
// FilterEq over each column 0's dictionary value selects exactly the rows
// carrying it, and the selections partition the block.
func FuzzColBlockRoundTrip(f *testing.F) {
	f.Add([]byte("1\x002\x001\x003"), byte(0))
	f.Add([]byte("a\x00b\x00a\x00b"), byte(1))
	f.Add([]byte("1\x00x\x00x\x001\x00-9223372036854775808\x009223372036854775807"), byte(0))
	f.Add([]byte(""), byte(0))
	f.Add([]byte("\x00\x00\x00\x00\xff\x00\xfe"), byte(1))
	f.Add([]byte("0\x000\x00-1\x001\x0000\x00+0"), byte(0))
	f.Fuzz(func(t *testing.T, blob []byte, col byte) {
		r := blobMixedRelation("AB", blob)
		b := FromRelation(r)
		if err := b.Validate(); err != nil {
			t.Fatalf("invalid block: %v\nblob=%q", err, blob)
		}
		if b.Len() != r.Len() {
			t.Fatalf("block has %d rows, relation %d", b.Len(), r.Len())
		}
		if !b.ToRelation().Equal(r) {
			t.Fatalf("round trip changed relation for blob %q", blob)
		}
		// Selection-vector invariant: filtering on every dictionary value of
		// the chosen column partitions the rows, and each selected row
		// decodes to the filtered value.
		c := int(col) % 2
		var sel SelVec
		total := 0
		for _, v := range b.Dict(c) {
			sel.Reset(b.Len())
			b.FilterEq(&sel, c, v)
			total += sel.Len()
			for _, i := range sel.Indices() {
				if !b.Value(int(i), c).Equal(v) {
					t.Fatalf("FilterEq(%v) selected row %d decoding to %v", v, i, b.Value(int(i), c))
				}
			}
		}
		if total != b.Len() {
			t.Fatalf("dictionary selections cover %d rows, block has %d", total, b.Len())
		}
	})
}

// blobMixedRelation decodes a fuzzer blob into a two-column relation:
// NUL-split fields fill rows pairwise, and any field parsing as a base-10
// int64 becomes an Int value, so blobs can force mixed-kind columns.
func blobMixedRelation(scheme string, blob []byte) *Relation {
	r := New(SchemaOfRunes(scheme))
	fields := strings.Split(string(blob), "\x00")
	mk := func(s string) Value {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return Int(n)
		}
		return String(s)
	}
	for i := 0; i+1 < len(fields); i += 2 {
		r.MustInsert(Tuple{mk(fields[i]), mk(fields[i+1])})
	}
	return r
}
