package relation

import (
	"sort"
	"strings"
)

// AttrSet is a set of attribute names, stored sorted and without duplicates.
// The zero value is the empty set. AttrSet values are immutable by
// convention: all operations return new sets and never modify receivers.
type AttrSet []string

// NewAttrSet builds an AttrSet from the given names, sorting and
// deduplicating them.
func NewAttrSet(attrs ...string) AttrSet {
	if len(attrs) == 0 {
		return nil
	}
	out := make(AttrSet, len(attrs))
	copy(out, attrs)
	sort.Strings(out)
	// Deduplicate in place.
	w := 0
	for i, a := range out {
		if i == 0 || a != out[w-1] {
			out[w] = a
			w++
		}
	}
	return out[:w]
}

// AttrSetOfRunes builds an AttrSet treating each rune of s as one
// single-character attribute name; "ABC" becomes {A, B, C}. This matches the
// paper's notation for relation schemes.
func AttrSetOfRunes(s string) AttrSet {
	attrs := make([]string, 0, len(s))
	for _, r := range s {
		attrs = append(attrs, string(r))
	}
	return NewAttrSet(attrs...)
}

// Len returns the number of attributes in the set.
func (s AttrSet) Len() int { return len(s) }

// IsEmpty reports whether the set has no attributes.
func (s AttrSet) IsEmpty() bool { return len(s) == 0 }

// Contains reports whether attr is in the set.
func (s AttrSet) Contains(attr string) bool {
	i := sort.SearchStrings(s, attr)
	return i < len(s) && s[i] == attr
}

// ContainsAll reports whether every attribute of t is in s (t ⊆ s).
func (s AttrSet) ContainsAll(t AttrSet) bool {
	i := 0
	for _, a := range t {
		for i < len(s) && s[i] < a {
			i++
		}
		if i >= len(s) || s[i] != a {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same attributes.
func (s AttrSet) Equal(t AttrSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Overlaps reports whether s and t share at least one attribute. Two join
// operands form a Cartesian product exactly when their schemes do not
// overlap.
func (s AttrSet) Overlaps(t AttrSet) bool {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Union returns s ∪ t.
func (s AttrSet) Union(t AttrSet) AttrSet {
	if len(s) == 0 {
		return t
	}
	if len(t) == 0 {
		return s
	}
	out := make(AttrSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns s ∩ t.
func (s AttrSet) Intersect(t AttrSet) AttrSet {
	var out AttrSet
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Diff returns s − t.
func (s AttrSet) Diff(t AttrSet) AttrSet {
	var out AttrSet
	j := 0
	for _, a := range s {
		for j < len(t) && t[j] < a {
			j++
		}
		if j < len(t) && t[j] == a {
			continue
		}
		out = append(out, a)
	}
	return out
}

// UnionAll returns the union of all the given sets.
func UnionAll(sets ...AttrSet) AttrSet {
	var out AttrSet
	for _, s := range sets {
		out = out.Union(s)
	}
	return out
}

// String renders the set in the paper's compact style: single-character
// attributes concatenate ("ABC"); otherwise names join with commas inside
// braces ("{city,year}").
func (s AttrSet) String() string {
	if len(s) == 0 {
		return "{}"
	}
	compact := true
	for _, a := range s {
		if len(a) != 1 {
			compact = false
			break
		}
	}
	if compact {
		return strings.Join(s, "")
	}
	return "{" + strings.Join(s, ",") + "}"
}
