package relation

import "testing"

// exampleDB is a tiny database over the paper's 4-cycle scheme whose links
// increment mod 3 plus a closing bottom tuple: pairwise consistent, join of
// exactly one tuple.
func exampleDB(t *testing.T) *Database {
	t.Helper()
	mk := func(scheme string) *Relation { return New(SchemaOfRunes(scheme)) }
	r1, r2, r3, r4 := mk("ABC"), mk("CDE"), mk("EFG"), mk("GHA")
	for v := int64(0); v < 3; v++ {
		next := (v + 1) % 3
		r1.MustInsert(Ints(v, 0, next))
		r2.MustInsert(Ints(v, 0, next))
		r3.MustInsert(Ints(v, 0, next))
		r4.MustInsert(Ints(v, 0, next))
	}
	for _, r := range []*Relation{r1, r2, r3, r4} {
		r.MustInsert(Ints(-1, 0, -1))
	}
	return MustDatabase(r1, r2, r3, r4)
}

func TestNewDatabase(t *testing.T) {
	if _, err := NewDatabase(); err == nil {
		t.Error("empty database accepted")
	}
	if _, err := NewDatabase(nil); err == nil {
		t.Error("nil relation accepted")
	}
	db := exampleDB(t)
	if db.Len() != 4 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestDatabaseSchemesAndAttrs(t *testing.T) {
	db := exampleDB(t)
	schemes := db.Schemes()
	if len(schemes) != 4 || !schemes[0].Equal(AttrSetOfRunes("ABC")) {
		t.Errorf("Schemes = %v", schemes)
	}
	if !db.Attrs().Equal(AttrSetOfRunes("ABCDEFGH")) {
		t.Errorf("Attrs = %v", db.Attrs())
	}
}

func TestDatabaseJoinSingleTuple(t *testing.T) {
	db := exampleDB(t)
	full := db.Join()
	if full.Len() != 1 {
		t.Fatalf("⋈D has %d tuples, want 1", full.Len())
	}
	row := full.Rows()[0]
	for _, v := range row {
		if v.Kind() == KindInt && v.AsInt() > 0 {
			t.Errorf("surviving tuple should be the bottom/payload tuple, got %v", row)
		}
	}
}

func TestDatabaseConsistency(t *testing.T) {
	db := exampleDB(t)
	if !db.PairwiseConsistent() {
		t.Error("Example-3-style database should be pairwise consistent")
	}
	if db.GloballyConsistent() {
		t.Error("Example-3-style database must not be globally consistent")
	}
	// A globally consistent database: project a single relation's join.
	full := db.Join()
	p1 := MustProject(full, AttrSetOfRunes("AB"))
	p2 := MustProject(full, AttrSetOfRunes("BC"))
	gc := MustDatabase(p1, p2)
	if !gc.GloballyConsistent() {
		t.Error("projections of a join should be globally consistent")
	}
	if !gc.PairwiseConsistent() {
		t.Error("globally consistent implies pairwise consistent")
	}
}

func TestDatabaseRestrict(t *testing.T) {
	db := exampleDB(t)
	sub, err := db.Restrict([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || !sub.Relation(0).Schema().Equal(SchemaOfRunes("EFG")) {
		t.Errorf("Restrict wrong: %s", sub)
	}
	if _, err := db.Restrict([]int{9}); err == nil {
		t.Error("out-of-range restrict accepted")
	}
}

func TestDatabaseTotalTuples(t *testing.T) {
	db := exampleDB(t)
	if got := db.TotalTuples(); got != 16 {
		t.Errorf("TotalTuples = %d, want 16", got)
	}
}

func TestPairwiseConsistencyDetectsDangling(t *testing.T) {
	r1 := New(SchemaOfRunes("AB"))
	r1.MustInsert(Ints(1, 1))
	r1.MustInsert(Ints(2, 2)) // dangling: no B=2 in r2
	r2 := New(SchemaOfRunes("BC"))
	r2.MustInsert(Ints(1, 1))
	db := MustDatabase(r1, r2)
	if db.PairwiseConsistent() {
		t.Error("dangling tuple not detected")
	}
}
