package relation

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary wire format (the store's WAL records and snapshot files speak
// this): each value is the same injective, self-delimiting encoding the
// engine already uses for hashing and dedup keys (Value.appendKey) — a kind
// byte, then an 8-byte big-endian integer or a 4-byte big-endian length and
// the string bytes. A tuple is a uvarint arity followed by its values.
// Exporting an encoder/decoder pair over that existing encoding means the
// durable format and the in-memory hash keys can never drift apart.

// ErrBinaryCorrupt is the sentinel wrapped by every binary-decode failure;
// match with errors.Is. Decoders return it (never panic) on truncated
// input, unknown kind bytes, or lengths that overrun the buffer.
var ErrBinaryCorrupt = errors.New("relation: corrupt binary encoding")

// MaxBinaryStringLen caps the declared length of an encoded string value; a
// larger length is corruption, not data (it would exceed any real record).
const MaxBinaryStringLen = 1 << 28 // 256 MiB

// AppendValueBinary appends v's binary encoding to dst and returns the
// extended slice. The encoding is self-delimiting: values concatenate
// without separators and decode unambiguously.
func AppendValueBinary(dst []byte, v Value) []byte {
	return v.appendKey(dst)
}

// DecodeValueBinary decodes one value from the front of b, returning the
// value and the number of bytes consumed. Errors wrap ErrBinaryCorrupt.
func DecodeValueBinary(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, fmt.Errorf("%w: empty input", ErrBinaryCorrupt)
	}
	switch b[0] {
	case 'i':
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("%w: truncated integer (%d of 9 bytes)", ErrBinaryCorrupt, len(b))
		}
		return Int(int64(binary.BigEndian.Uint64(b[1:9]))), 9, nil
	case 's':
		if len(b) < 5 {
			return Value{}, 0, fmt.Errorf("%w: truncated string header (%d of 5 bytes)", ErrBinaryCorrupt, len(b))
		}
		n := binary.BigEndian.Uint32(b[1:5])
		if n > MaxBinaryStringLen {
			return Value{}, 0, fmt.Errorf("%w: string length %d exceeds limit", ErrBinaryCorrupt, n)
		}
		if uint64(len(b)) < 5+uint64(n) {
			return Value{}, 0, fmt.Errorf("%w: string length %d overruns input (%d bytes left)", ErrBinaryCorrupt, n, len(b)-5)
		}
		return String(string(b[5 : 5+n])), 5 + int(n), nil
	default:
		return Value{}, 0, fmt.Errorf("%w: unknown value kind byte 0x%02x", ErrBinaryCorrupt, b[0])
	}
}

// AppendTupleBinary appends t's binary encoding (uvarint arity, then each
// value) to dst and returns the extended slice.
func AppendTupleBinary(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = AppendValueBinary(dst, v)
	}
	return dst
}

// DecodeTupleBinary decodes one tuple from the front of b, returning the
// tuple and the number of bytes consumed. Errors wrap ErrBinaryCorrupt.
func DecodeTupleBinary(b []byte) (Tuple, int, error) {
	arity, n, err := DecodeUvarint(b)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: tuple arity: %v", ErrBinaryCorrupt, err)
	}
	// An arity that cannot fit in the remaining bytes (each value is at
	// least 5 bytes) is corruption; reject before allocating.
	if arity > uint64(len(b)-n) {
		return nil, 0, fmt.Errorf("%w: tuple arity %d overruns input", ErrBinaryCorrupt, arity)
	}
	t := make(Tuple, 0, arity)
	off := n
	for i := uint64(0); i < arity; i++ {
		v, vn, err := DecodeValueBinary(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("tuple value %d: %w", i, err)
		}
		t = append(t, v)
		off += vn
	}
	return t, off, nil
}

// DecodeUvarint is binary.Uvarint with a typed error instead of the
// sign-encoded count, so codec callers get uniform ErrBinaryCorrupt errors.
func DecodeUvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: bad uvarint", ErrBinaryCorrupt)
	}
	return v, n, nil
}

// AppendRelationBinary appends r's binary encoding to dst: a uvarint
// attribute count, each attribute name as a length-prefixed string, a
// uvarint row count, then the rows (in deterministic sorted order, without
// per-row arity — the schema fixes it).
func AppendRelationBinary(dst []byte, r *Relation) []byte {
	attrs := r.Schema().Attrs()
	dst = binary.AppendUvarint(dst, uint64(len(attrs)))
	for _, a := range attrs {
		dst = binary.AppendUvarint(dst, uint64(len(a)))
		dst = append(dst, a...)
	}
	rows := r.SortedRows()
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	for _, t := range rows {
		for _, v := range t {
			dst = AppendValueBinary(dst, v)
		}
	}
	return dst
}

// DecodeRelationBinary decodes one relation from the front of b, returning
// it and the number of bytes consumed. Errors wrap ErrBinaryCorrupt (for
// malformed bytes) or report an invalid schema (for well-formed bytes that
// name a bad scheme, e.g. duplicate attributes).
func DecodeRelationBinary(b []byte) (*Relation, int, error) {
	nattrs, off, err := DecodeUvarint(b)
	if err != nil {
		return nil, 0, fmt.Errorf("relation header: %w", err)
	}
	if nattrs == 0 || nattrs > uint64(len(b)) {
		return nil, 0, fmt.Errorf("%w: attribute count %d", ErrBinaryCorrupt, nattrs)
	}
	attrs := make([]string, nattrs)
	for i := range attrs {
		n, un, err := DecodeUvarint(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("attribute %d: %w", i, err)
		}
		off += un
		if n > uint64(len(b)-off) {
			return nil, 0, fmt.Errorf("%w: attribute %d length %d overruns input", ErrBinaryCorrupt, i, n)
		}
		attrs[i] = string(b[off : off+int(n)])
		off += int(n)
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, 0, err
	}
	nrows, un, err := DecodeUvarint(b[off:])
	if err != nil {
		return nil, 0, fmt.Errorf("row count: %w", err)
	}
	off += un
	// Every value encodes to ≥ 5 bytes, so a row count the remaining bytes
	// cannot possibly hold is corruption; reject before decoding.
	if nrows > uint64(len(b)-off) {
		return nil, 0, fmt.Errorf("%w: row count %d overruns input", ErrBinaryCorrupt, nrows)
	}
	out := New(schema)
	for i := uint64(0); i < nrows; i++ {
		row := make(Tuple, nattrs)
		for j := range row {
			v, vn, err := DecodeValueBinary(b[off:])
			if err != nil {
				return nil, 0, fmt.Errorf("row %d value %d: %w", i, j, err)
			}
			row[j] = v
			off += vn
		}
		out.MustInsert(row) // arity is correct by construction
	}
	return out, off, nil
}
