package shard_test

// The differential gauntlet: scatter-gather execution must be
// observationally identical to sequential execution — same result, same
// §2.3 cost, same governor charges, and the same tuple-budget abort
// boundary — across random schemes (cyclic ones included), every strategy,
// shard counts {1,2,4,8}, and broadcast thresholds from "partition
// everything" to "broadcast everything". Plans the cleanliness analysis
// rejects fall back to single-shard execution inside Run, so parity is
// asserted on every trial, not just the clean ones.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/shard"
	"repro/internal/workload"
)

// gauntletCase is one (scheme, instance) trial.
type gauntletCase struct {
	name   string
	db     *relation.Database
	cyclic bool
	// threshold is the broadcast threshold for this trial's groups.
	threshold int
}

// hugeBudget makes the governor count charges without ever aborting, so
// sequential and sharded Produced are comparable on every trial.
const hugeBudget = int64(1) << 40

var gauntletCounts = []int{1, 2, 4, 8}

// gauntletCases draws the trial set: random connected schemes plus
// cyclic-by-construction triangle, cycle, and clique workloads. The
// broadcast threshold rotates per case so the gauntlet exercises
// all-partitioned, mixed, and all-broadcast layouts (the last forcing the
// unclean single-shard fallback).
func gauntletCases(t *testing.T, rng *rand.Rand, randomSchemes int) []gauntletCase {
	t.Helper()
	thresholds := []int{0, 8, 64, 1 << 30}
	var cases []gauntletCase
	add := func(name string, db *relation.Database) {
		h := hypergraph.OfScheme(db)
		cases = append(cases, gauntletCase{
			name:      name,
			db:        db,
			cyclic:    !h.Acyclic(),
			threshold: thresholds[len(cases)%len(thresholds)],
		})
	}

	for i := 0; i < randomSchemes; i++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 3 + rng.Intn(3),
			Attrs:     5,
			MaxArity:  3,
			Connected: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		db, err := workload.RandomDatabase(rng, h, 4+rng.Intn(12), 3)
		if err != nil {
			t.Fatal(err)
		}
		add(fmt.Sprintf("random-%d", i), db)
	}

	// Cyclic by construction: triangles, Example 3 cycles, and a 4-clique.
	for i, spec := range []workload.TriangleSpec{
		{Nodes: 12, Edges: 40}, {Nodes: 20, Edges: 60}, {Nodes: 8, Edges: 30},
		{Nodes: 25, Edges: 70}, {Nodes: 15, Edges: 50}, {Nodes: 10, Edges: 45},
		{Nodes: 18, Edges: 55}, {Nodes: 14, Edges: 48},
	} {
		db, err := spec.TriangleDatabase(rng)
		if err != nil {
			t.Fatal(err)
		}
		add(fmt.Sprintf("triangle-%d", i), db)
	}
	for _, q := range []int64{4, 6, 8, 10} {
		spec, err := workload.Example3(q)
		if err != nil {
			t.Fatal(err)
		}
		db, err := spec.CycleDatabase()
		if err != nil {
			t.Fatal(err)
		}
		add(fmt.Sprintf("example3-q%d", q), db)
	}
	for i := 0; i < 8; i++ {
		h, err := workload.CliqueScheme(4)
		if err != nil {
			t.Fatal(err)
		}
		db, err := workload.RandomDatabase(rng, h, 6+rng.Intn(8), 3)
		if err != nil {
			t.Fatal(err)
		}
		add(fmt.Sprintf("clique4-%d", i), db)
	}
	return cases
}

// assertParity runs one (case, plan, shard count) trial against its
// sequential baseline and fails on any observable divergence.
func assertParity(t *testing.T, tag string, g *shard.Group, plan *engine.Plan, ex shard.Executor, seq *engine.Report) (scattered bool) {
	t.Helper()
	opts := engine.Options{Limits: govern.Limits{MaxTuples: hugeBudget}}
	rep, err := shard.Run(g, plan, opts, ex)
	if err != nil {
		t.Fatalf("%s: sharded run failed: %v", tag, err)
	}
	if !rep.Result.Equal(seq.Result) {
		t.Fatalf("%s: sharded result (%d tuples) != sequential (%d tuples)",
			tag, rep.Result.Len(), seq.Result.Len())
	}
	if rep.Cost != seq.Cost {
		t.Fatalf("%s: sharded cost %d != sequential %d", tag, rep.Cost, seq.Cost)
	}
	if rep.Produced != seq.Produced {
		t.Fatalf("%s: sharded governor charge %d != sequential %d", tag, rep.Produced, seq.Produced)
	}
	return rep.Shards > 1
}

// assertAbortBoundary checks a budget one below the sequential charge
// aborts both executions with ErrTupleBudget, and a budget exactly at the
// charge aborts neither — the abort fires on the same global produced
// count sharded and not.
func assertAbortBoundary(t *testing.T, tag string, db *relation.Database, g *shard.Group, plan *engine.Plan, ex shard.Executor, seqProduced int64) {
	t.Helper()
	if seqProduced < 2 {
		return // a 0/1-tuple charge has no meaningful boundary below it
	}
	under := engine.Options{Limits: govern.Limits{MaxTuples: seqProduced - 1}}
	if _, err := engine.ExecutePlan(db, plan, under); !errors.Is(err, govern.ErrTupleBudget) {
		t.Fatalf("%s: sequential under-budget run: got %v, want ErrTupleBudget", tag, err)
	}
	if _, err := shard.Run(g, plan, under, ex); !errors.Is(err, govern.ErrTupleBudget) {
		t.Fatalf("%s: sharded under-budget run: got %v, want ErrTupleBudget", tag, err)
	}
	at := engine.Options{Limits: govern.Limits{MaxTuples: seqProduced}}
	if _, err := engine.ExecutePlan(db, plan, at); err != nil {
		t.Fatalf("%s: sequential at-budget run failed: %v", tag, err)
	}
	if _, err := shard.Run(g, plan, at, ex); err != nil {
		t.Fatalf("%s: sharded at-budget run failed: %v", tag, err)
	}
}

// TestDifferentialGauntlet is the in-process gauntlet: 100+ schemes (20+
// cyclic), every strategy, shard counts {1,2,4,8}, with abort-boundary
// probes at 4 shards.
func TestDifferentialGauntlet(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	randomSchemes := 80
	if testing.Short() {
		randomSchemes = 20
	}
	cases := gauntletCases(t, rng, randomSchemes)
	cyclic := 0
	for _, c := range cases {
		if c.cyclic {
			cyclic++
		}
	}
	if len(cases) < 100 && !testing.Short() {
		t.Fatalf("gauntlet has %d cases, want >= 100", len(cases))
	}
	if cyclic < 20 {
		t.Fatalf("gauntlet has %d cyclic cases, want >= 20", cyclic)
	}

	trials, scatters := 0, 0
	for _, c := range cases {
		for _, strat := range engine.Strategies() {
			plan, err := engine.PlanFor(c.db, engine.Options{Strategy: strat})
			if err != nil {
				continue // e.g. the acyclic pipeline on a cyclic scheme
			}
			seq, err := engine.ExecutePlan(c.db, plan, engine.Options{Limits: govern.Limits{MaxTuples: hugeBudget}})
			if err != nil {
				t.Fatalf("%s/%s: sequential baseline failed: %v", c.name, strat, err)
			}
			for _, n := range gauntletCounts {
				g, err := shard.NewGroup(c.name, c.db, n, c.threshold)
				if err != nil {
					t.Fatalf("%s: group(%d): %v", c.name, n, err)
				}
				tag := fmt.Sprintf("%s/%s/shards=%d/threshold=%d", c.name, strat, n, c.threshold)
				if assertParity(t, tag, g, plan, shard.NewInProcess(g), seq) {
					scatters++
				}
				trials++
				if n == 4 {
					assertAbortBoundary(t, tag, c.db, g, plan, shard.NewInProcess(g), seq.Produced)
				}
			}
		}
	}
	if scatters == 0 {
		t.Fatal("gauntlet never scattered: every trial fell back to single-shard execution")
	}
	t.Logf("gauntlet: %d cases (%d cyclic), %d trials, %d scattered", len(cases), cyclic, trials, scatters)
}

// TestGauntletIngestRebase replays random ingest batches through
// Group.Rebase and asserts the rebased shards still reproduce the
// sequential join of the mutated catalog — the partitions stay in step
// with the full database across mutation, tuple by tuple.
func TestGauntletIngestRebase(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cases := gauntletCases(t, rng, 10)
	for _, c := range cases {
		g, err := shard.NewGroup(c.name, c.db, 4, c.threshold)
		if err != nil {
			t.Fatal(err)
		}
		db := c.db
		for round := 0; round < 3; round++ {
			batch := randomBatch(rng, db)
			applied, err := applyReference(db, batch)
			if err != nil {
				t.Fatalf("%s: reference apply: %v", c.name, err)
			}
			g, err = g.Rebase(applied, batch)
			if err != nil {
				t.Fatalf("%s: rebase: %v", c.name, err)
			}
			db = applied
			plan, err := engine.PlanFor(db, engine.Options{Strategy: engine.StrategyExpression})
			if err != nil {
				t.Fatal(err)
			}
			seq, err := engine.ExecutePlan(db, plan, engine.Options{Limits: govern.Limits{MaxTuples: hugeBudget}})
			if err != nil {
				t.Fatal(err)
			}
			tag := fmt.Sprintf("%s/round=%d", c.name, round)
			assertParity(t, tag, g, plan, shard.NewInProcess(g), seq)
		}
	}
}
