package shard

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/jointree"
	"repro/internal/program"
)

// CleanFor reports whether the plan scatters cleanly over this group:
// whether running it independently per shard yields results that are
// disjoint and complete AND governor charges that sum to exactly the
// sequential execution's. When it returns false the reason names what
// breaks, and Run executes the plan unsharded instead — parity then holds
// trivially.
//
// The analysis, per strategy (A is the partition attribute):
//
//   - Expression, columnar, and direct evaluation walk the plan's join
//     tree. An internal node whose subtree holds at least one partitioned
//     leaf produces tuples carrying that leaf's A value, so its per-shard
//     outputs partition by h(t[A]) — disjoint, complete, and charged
//     exactly once across shards. A subtree made only of broadcast leaves
//     would instead be recomputed identically on every shard, multiplying
//     its charges by the shard count; such plans are unclean.
//
//   - WCOJ charges the trie inputs plus the enumerated output. A broadcast
//     relation's trie would be built (and charged) once per shard, so the
//     leapfrog route is clean only when every relation is partitioned.
//
//   - The acyclic full-reducer pipeline runs a fixed semijoin sequence;
//     with every relation partitioned, each semijoin's per-shard outputs
//     partition on A exactly like tree nodes. Any broadcast relation's
//     reductions would be recharged per shard: unclean.
//
//   - The paper's programs are clean when every relation is partitioned
//     and every statement's head retains A: joins and semijoins always
//     propagate A from their arguments, but a projection that drops A
//     makes per-shard heads collide across shards (the same projected
//     tuple arises on several shards and is charged on each), breaking
//     charge parity even though the merged result would dedup correctly.
//
//   - Reduce-then-join iterates pairwise semijoin reduction to a
//     fixpoint whose round count is instance-local: a shard that converges
//     early stops charging while the sequential run keeps scanning its
//     tuples, so charges diverge structurally. Never clean.
func (g *Group) CleanFor(plan *engine.Plan) (bool, string) {
	if g.n == 1 {
		return true, ""
	}
	npart := g.PartitionedCount()
	if npart == 0 {
		return false, fmt.Sprintf("no relation partitions on %q (all broadcast or missing the attribute)", g.attr)
	}
	allPart := npart == len(g.part)
	switch plan.Strategy {
	case engine.StrategyExpression, engine.StrategyColumnar, engine.StrategyDirect:
		if plan.Tree == nil {
			return false, "plan has no join tree"
		}
		if _, clean := treeClean(plan.Tree, g.partCanon); !clean {
			return false, "a join-tree subtree holds only broadcast relations and would be recomputed per shard"
		}
		return true, ""
	case engine.StrategyWCOJ:
		if !allPart {
			return false, fmt.Sprintf("leapfrog needs every relation partitioned on %q (broadcast tries would be charged per shard)", g.attr)
		}
		return true, ""
	case engine.StrategyAcyclic:
		if !allPart {
			return false, fmt.Sprintf("the full-reducer pipeline needs every relation partitioned on %q", g.attr)
		}
		return true, ""
	case engine.StrategyProgram:
		if !allPart {
			return false, fmt.Sprintf("the program route needs every relation partitioned on %q", g.attr)
		}
		if plan.Derivation == nil || plan.Derivation.Program == nil {
			return false, "plan has no derived program"
		}
		if stmt, ok := programRetains(plan.Derivation.Program, g.attr); !ok {
			return false, fmt.Sprintf("program statement %q drops partition attribute %q", stmt, g.attr)
		}
		return true, ""
	case engine.StrategyReduceThenJoin:
		return false, "fixpoint reduction rounds are instance-local, so per-shard charges cannot sum to the sequential total"
	default:
		return false, fmt.Sprintf("no cleanliness analysis for strategy %s", plan.Strategy)
	}
}

// treeClean walks a join tree, returning whether the subtree holds a
// partitioned leaf and whether every internal node below (and including)
// it does. partCanon indexes leaves in the plan's canonical edge order.
func treeClean(t *jointree.Tree, partCanon []bool) (hasPart, clean bool) {
	if t.IsLeaf() {
		if t.Leaf < 0 || t.Leaf >= len(partCanon) {
			return false, false
		}
		return partCanon[t.Leaf], true
	}
	lp, lc := treeClean(t.Left, partCanon)
	rp, rc := treeClean(t.Right, partCanon)
	has := lp || rp
	return has, lc && rc && has
}

// programRetains dataflows "does this relation's schema retain attr"
// through the program's statements. Inputs are assumed to retain attr (the
// caller established every relation is partitioned on it). It returns the
// first statement whose head loses attr, or ok = true.
func programRetains(p *program.Program, attr string) (string, bool) {
	has := make(map[string]bool, len(p.Inputs)+len(p.Stmts))
	for _, name := range p.Inputs {
		has[name] = true
	}
	for _, st := range p.Stmts {
		var h bool
		switch st.Op {
		case program.OpProject:
			h = has[st.Arg1] && st.Proj.Contains(attr)
		case program.OpJoin:
			h = has[st.Arg1] || has[st.Arg2]
		case program.OpSemijoin:
			// The head is Arg1 filtered by Arg2; its schema is Arg1's.
			h = has[st.Arg1]
		}
		if !h {
			return st.String(), false
		}
		has[st.Head] = h
	}
	return "", true
}
