// Package shard implements one-round MPC-style scatter-gather execution:
// a database's relations are hash-partitioned on one join attribute chosen
// from the hypergraph (relations lacking the attribute, or too small for
// repartitioning to pay, are broadcast to every shard instead), the
// engine's existing plan runs unchanged and independently on each shard,
// and the disjoint per-shard results merge back into one relation. The
// schedule follows "A Near-Optimal Parallel Algorithm for Joining Binary
// Relations" (PAPERS.md): partition on a shared attribute so matching
// tuples land on the same shard, broadcast small relations when shipping
// them whole is cheaper than repartitioning.
//
// The subsystem's contract is charge parity: a scattered execution's merged
// result, §2.3 cost, and governor-charged tuple count equal the sequential
// execution's exactly, and a tuple-budget abort fires on the same global
// produced count (per-shard governors share one govern.Pool). Parity holds
// only for (plan, partitioning) pairs the cleanliness analysis admits —
// see Group.CleanFor — so Run falls back to single-shard execution for
// anything unclean rather than scatter with approximate accounting.
package shard

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/store"
)

// DefaultBroadcastThreshold is the default relation size below which a
// relation containing the partition attribute is broadcast rather than
// repartitioned: shipping a handful of tuples to every shard is cheaper
// than the bookkeeping of keeping its partitions in step across ingest.
const DefaultBroadcastThreshold = 128

// ChooseAttribute picks the partition attribute for a scheme: the attribute
// on the most hyperedges, ties broken lexicographically. Partitioning on
// the highest-degree attribute maximizes the number of relations that can
// be hash-partitioned instead of broadcast — when an attribute is on every
// edge (a triangle's A, a star's center) the whole database partitions and
// every strategy scatters cleanly. The choice is deterministic, so every
// node of a remote group picks the same attribute independently.
func ChooseAttribute(h *hypergraph.Hypergraph) string {
	best, bestDeg := "", 0
	for _, a := range h.Attrs() {
		deg := 0
		for _, e := range h.Edges() {
			if e.Contains(a) {
				deg++
			}
		}
		if deg > bestDeg || (deg == bestDeg && bestDeg > 0 && a < best) {
			best, bestDeg = a, deg
		}
	}
	return best
}

// Group is one database's sharded layout: the partition attribute, the
// per-relation partitioned-or-broadcast decision, and the N per-shard
// databases over the same scheme. A Group is immutable — ingest produces a
// rebased successor via Rebase — so readers pin one consistent layout
// (including the matching unsharded catalog, Full) with a single atomic
// load.
type Group struct {
	name      string
	attr      string
	n         int
	threshold int
	// part and pos are per relation in the database's registration order:
	// whether relation i is hash-partitioned on attr, and attr's column
	// position in its schema (-1 when absent). The decision is made once at
	// group construction from the then-current sizes and is sticky across
	// Rebase, so a relation never migrates between broadcast and
	// partitioned mid-stream.
	part []bool
	pos  []int
	// partCanon is part permuted into the scheme's canonical edge order —
	// the order plans (trees, programs, variable orders) are expressed in.
	partCanon []bool
	full      *relation.Database
	dbs       []*relation.Database
}

// NewGroup partitions db into shards shards on the attribute
// ChooseAttribute picks. Relations lacking the attribute, or with fewer
// than broadcastThreshold tuples (0 = never broadcast by size), are
// broadcast: every shard database shares the full relation by pointer.
// shards must be >= 1; shards == 1 yields a trivial group whose only shard
// is db itself.
func NewGroup(name string, db *relation.Database, shards, broadcastThreshold int) (*Group, error) {
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("shard: empty database")
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	h := hypergraph.OfScheme(db)
	g := &Group{
		name:      name,
		attr:      ChooseAttribute(h),
		n:         shards,
		threshold: broadcastThreshold,
		part:      make([]bool, db.Len()),
		pos:       make([]int, db.Len()),
		full:      db,
	}
	for i := 0; i < db.Len(); i++ {
		rel := db.Relation(i)
		p, ok := rel.Schema().Position(g.attr)
		if !ok {
			g.pos[i] = -1
			continue
		}
		g.pos[i] = p
		g.part[i] = shards == 1 || broadcastThreshold <= 0 || rel.Len() >= broadcastThreshold
	}
	perm := h.CanonicalOrder()
	g.partCanon = make([]bool, len(perm))
	for j, p := range perm {
		g.partCanon[j] = g.part[p]
	}
	if err := g.split(db); err != nil {
		return nil, err
	}
	return g, nil
}

// split builds the per-shard databases from the full catalog: partitioned
// relations are hashed row-by-row into n buckets, broadcast relations are
// shared by pointer (tuples and relations are immutable once registered).
func (g *Group) split(db *relation.Database) error {
	if g.n == 1 {
		g.dbs = []*relation.Database{db}
		return nil
	}
	shardRels := make([][]*relation.Relation, g.n)
	for s := range shardRels {
		shardRels[s] = make([]*relation.Relation, db.Len())
	}
	for i := 0; i < db.Len(); i++ {
		rel := db.Relation(i)
		if !g.part[i] {
			for s := range shardRels {
				shardRels[s][i] = rel
			}
			continue
		}
		parts := make([]*relation.Relation, g.n)
		for s := range parts {
			parts[s] = relation.New(rel.Schema())
		}
		for _, t := range rel.Rows() {
			parts[t.ShardOf(g.pos[i], g.n)].MustInsert(t)
		}
		for s := range shardRels {
			shardRels[s][i] = parts[s]
		}
	}
	g.dbs = make([]*relation.Database, g.n)
	for s := range g.dbs {
		sdb, err := relation.NewDatabase(shardRels[s]...)
		if err != nil {
			return err
		}
		g.dbs[s] = sdb
	}
	return nil
}

// Name returns the catalog name the group was built for (remote executors
// query it on every peer).
func (g *Group) Name() string { return g.name }

// Attr returns the partition attribute.
func (g *Group) Attr() string { return g.attr }

// Shards returns the shard count.
func (g *Group) Shards() int { return g.n }

// Full returns the unsharded catalog the group was built from — the same
// snapshot the shard databases partition, so one Group load pins a
// consistent pair.
func (g *Group) Full() *relation.Database { return g.full }

// DB returns shard i's database.
func (g *Group) DB(i int) *relation.Database { return g.dbs[i] }

// Partitioned reports whether relation i (registration order) is
// hash-partitioned; false means broadcast.
func (g *Group) Partitioned(i int) bool { return g.part[i] }

// PartitionedCount returns how many relations are hash-partitioned.
func (g *Group) PartitionedCount() int {
	c := 0
	for _, p := range g.part {
		if p {
			c++
		}
	}
	return c
}

// BroadcastTuples returns the total tuples of the broadcast relations in
// the current catalog. Each shard counts these among its inputs, so a
// scattered execution's summed §2.3 costs exceed the sequential cost by
// exactly (Shards-1) * BroadcastTuples — the correction Run applies.
func (g *Group) BroadcastTuples() int64 {
	var n int64
	for i, p := range g.part {
		if !p {
			n += int64(g.full.Relation(i).Len())
		}
	}
	return n
}

// Owner returns the shard owning tuple t of relation rel, or -1 when the
// relation is broadcast (the tuple belongs on every shard). This is the
// routing rule for ingest: it uses the same hash as the initial split, so
// a routed mutation lands exactly where the split would have put it.
func (g *Group) Owner(rel int, t relation.Tuple) int {
	if !g.part[rel] {
		return -1
	}
	return t.ShardOf(g.pos[rel], g.n)
}

// Rebase returns the group's successor after one ingest batch: applied is
// the post-batch durable catalog (from store.Apply), and batch is the
// batch itself, which Rebase routes to the owning shards and replays onto
// their databases in WAL order. Broadcast relations are not replayed —
// every shard re-shares applied's relation by pointer, which keeps them
// bit-identical to the durable catalog. The receiver is not modified.
func (g *Group) Rebase(applied *relation.Database, batch store.Batch) (*Group, error) {
	next := *g
	next.full = applied
	if g.n == 1 {
		next.dbs = []*relation.Database{applied}
		return &next, nil
	}
	// Only mutations on partitioned relations need routing; broadcast
	// relations are refreshed from the durable catalog below.
	var pbatch store.Batch
	for _, m := range batch {
		if m.Relation < 0 || m.Relation >= len(g.part) {
			return nil, fmt.Errorf("shard: batch names relation %d outside scheme [0,%d)", m.Relation, len(g.part))
		}
		if g.part[m.Relation] {
			pbatch = append(pbatch, m)
		}
	}
	routed := pbatch.Route(g.n, g.Owner)
	next.dbs = make([]*relation.Database, g.n)
	for s := 0; s < g.n; s++ {
		sdb := g.dbs[s]
		if len(routed[s]) > 0 {
			var err error
			sdb, err = store.ApplyBatch(sdb, routed[s])
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", s, err)
			}
		}
		rels := append([]*relation.Relation(nil), sdb.Relations()...)
		for i, p := range g.part {
			if !p {
				rels[i] = applied.Relation(i)
			}
		}
		ndb, err := relation.NewDatabase(rels...)
		if err != nil {
			return nil, err
		}
		next.dbs[s] = ndb
	}
	return &next, nil
}
