package shard

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/workload"
)

func triangleDB(t *testing.T) *relation.Database {
	t.Helper()
	db, err := workload.TriangleSpec{Nodes: 10, Edges: 40}.TriangleDatabase(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestChooseAttribute(t *testing.T) {
	// Star: the hub attribute is on every edge; leaves are on one each.
	h, err := workload.StarScheme(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := ChooseAttribute(h); got != "hub" {
		t.Fatalf("star partition attribute = %q, want hub", got)
	}
	// Triangle: all attributes have degree 2; the lexicographic tie-break
	// must pick A deterministically.
	ht := hypergraph.OfScheme(triangleDB(t))
	if got := ChooseAttribute(ht); got != "A" {
		t.Fatalf("triangle partition attribute = %q, want A", got)
	}
}

func TestGroupPartitionInvariants(t *testing.T) {
	db := triangleDB(t)
	g, err := NewGroup("tri", db, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Attr() != "A" {
		t.Fatalf("attr = %q", g.Attr())
	}
	// R(A,B) and T(C,A) carry A and partition; S(B,C) lacks it: broadcast.
	wantPart := []bool{true, false, true}
	for i, want := range wantPart {
		if g.Partitioned(i) != want {
			t.Fatalf("relation %d partitioned = %v, want %v", i, g.Partitioned(i), want)
		}
	}
	// Partitioned relations: shard tuple counts sum to the full relation and
	// every tuple lands on the shard Owner names. Broadcast relations are
	// pointer-shared with the full catalog.
	for i := 0; i < db.Len(); i++ {
		full := db.Relation(i)
		if !g.Partitioned(i) {
			for s := 0; s < g.Shards(); s++ {
				if g.DB(s).Relation(i) != full {
					t.Fatalf("broadcast relation %d on shard %d is not pointer-shared", i, s)
				}
			}
			continue
		}
		total := 0
		for s := 0; s < g.Shards(); s++ {
			part := g.DB(s).Relation(i)
			total += part.Len()
			for _, row := range part.Rows() {
				if own := g.Owner(i, row); own != s {
					t.Fatalf("relation %d tuple %v on shard %d, Owner says %d", i, row, s, own)
				}
			}
		}
		if total != full.Len() {
			t.Fatalf("relation %d shards hold %d tuples, full has %d", i, total, full.Len())
		}
	}
	if g.BroadcastTuples() != int64(db.Relation(1).Len()) {
		t.Fatalf("BroadcastTuples = %d, want %d", g.BroadcastTuples(), db.Relation(1).Len())
	}
}

func TestGroupBroadcastThreshold(t *testing.T) {
	db := triangleDB(t) // 40 tuples per relation
	g, err := NewGroup("tri", db, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if n := g.PartitionedCount(); n != 0 {
		t.Fatalf("threshold 64 over 40-tuple relations: %d partitioned, want 0", n)
	}
	g, err = NewGroup("tri", db, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if n := g.PartitionedCount(); n != 2 {
		t.Fatalf("threshold 16: %d partitioned, want 2 (S lacks the attribute)", n)
	}
}

func TestCleanForReasons(t *testing.T) {
	db := triangleDB(t)
	g, err := NewGroup("tri", db, 4, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Tree strategies scatter: the best triangle tree joins S against a
	// subtree holding a partitioned relation.
	plan, err := engine.PlanFor(db, engine.Options{Strategy: engine.StrategyColumnar})
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := g.CleanFor(plan); !ok {
		t.Fatalf("columnar triangle plan unclean: %s", reason)
	}

	// Leapfrog needs every relation partitioned; S is broadcast here.
	plan, err = engine.PlanFor(db, engine.Options{Strategy: engine.StrategyWCOJ})
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := g.CleanFor(plan); ok || !strings.Contains(reason, "leapfrog") {
		t.Fatalf("wcoj clean = %v (%s), want unclean leapfrog reason", ok, reason)
	}

	// Fixpoint reduction is never clean.
	plan, err = engine.PlanFor(db, engine.Options{Strategy: engine.StrategyReduceThenJoin})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := g.CleanFor(plan); ok {
		t.Fatal("reduce-then-join must never scatter")
	}

	// All-broadcast groups never scatter.
	gb, err := NewGroup("tri", db, 4, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	plan, err = engine.PlanFor(db, engine.Options{Strategy: engine.StrategyColumnar})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := gb.CleanFor(plan); ok {
		t.Fatal("all-broadcast group reported clean")
	}

	// A single-shard group is trivially clean for anything.
	g1, err := NewGroup("tri", db, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := g1.CleanFor(plan); !ok {
		t.Fatal("single-shard group must be clean")
	}
}

func TestShardOfMatchesPartitionHash(t *testing.T) {
	// ShardOf must be stable and in-range for mixed value kinds.
	rows := []relation.Tuple{
		{relation.Int(0), relation.Int(1)},
		{relation.Int(-7), relation.String("x")},
		{relation.String(""), relation.Int(1 << 40)},
	}
	for _, row := range rows {
		for _, n := range []int{1, 2, 4, 8} {
			s := row.ShardOf(0, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%v, %d) = %d out of range", row, n, s)
			}
			if again := row.ShardOf(0, n); again != s {
				t.Fatalf("ShardOf not deterministic: %d then %d", s, again)
			}
		}
		if row.ShardOf(0, 1) != 0 {
			t.Fatal("single shard must own everything")
		}
	}
}
