package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/govern"
	"repro/internal/relation"
)

// HTTPExecutor fans shard tasks out to remote joind peers over the
// service's existing JSON wire format: shard i's task becomes a POST
// /v1/query to peers[i] with include_result set, and the decoded response
// is the shard's Result. Each peer must hold shard i's partition of the
// database under the same catalog name — the coordinator pushes partitions
// at registration and routes ingest batches (see internal/service).
//
// A remote peer cannot share an in-process budget pool, so SharedBudget is
// false: Run hands every peer the full tuple grant and post-checks the
// summed charges, which preserves the abort boundary (any single shard
// exceeding the grant aborts remotely with a resource_limit error; a
// collective overshoot aborts at the gather).
type HTTPExecutor struct {
	peers  []string
	client *http.Client
}

// NewHTTPExecutor returns an executor fanning out to the given peer base
// URLs (one per shard, e.g. "http://host:port"). client nil uses a default
// with a generous timeout; per-query deadlines ride the request context.
func NewHTTPExecutor(peers []string, client *http.Client) *HTTPExecutor {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	return &HTTPExecutor{peers: append([]string(nil), peers...), client: client}
}

// Peers returns the configured peer base URLs.
func (e *HTTPExecutor) Peers() []string { return append([]string(nil), e.peers...) }

// Shards implements Executor.
func (e *HTTPExecutor) Shards() int { return len(e.peers) }

// SharedBudget implements Executor: remote governors cannot share a pool.
func (e *HTTPExecutor) SharedBudget() bool { return false }

// remoteQuery mirrors the service's queryRequest wire format.
type remoteQuery struct {
	Database              string `json:"database"`
	Strategy              string `json:"strategy,omitempty"`
	MaxTuples             int64  `json:"max_tuples,omitempty"`
	MaxIntermediateTuples int64  `json:"max_intermediate_tuples,omitempty"`
	TimeoutMS             int64  `json:"timeout_ms,omitempty"`
	Indexed               bool   `json:"indexed,omitempty"`
	Workers               int    `json:"workers,omitempty"`
	IncludeResult         bool   `json:"include_result"`
}

// remoteResponse mirrors the fields of the service's queryResponse the
// gather needs.
type remoteResponse struct {
	Cost            int64              `json:"cost"`
	Produced        int64              `json:"produced"`
	Plan            string             `json:"plan"`
	Notes           []string           `json:"notes"`
	Result          *relation.Relation `json:"result"`
	ResultTruncated bool               `json:"result_truncated"`
}

// remoteErrorBody mirrors the service's errorResponse.
type remoteErrorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// remoteAbort is a typed abort relayed from a peer; it unwraps to the
// govern sentinel matching the peer's error kind so the coordinator's
// error handling (and the engine's degradation ladder) treat remote and
// in-process aborts identically.
type remoteAbort struct {
	sentinel error
	msg      string
}

func (e *remoteAbort) Error() string { return e.msg }
func (e *remoteAbort) Unwrap() error { return e.sentinel }

// Execute implements Executor: POST the task to peer i and decode the
// response.
func (e *HTTPExecutor) Execute(ctx context.Context, i int, task Task) (*Result, error) {
	peer := e.peers[i]
	q := remoteQuery{
		Database:              task.Database,
		Strategy:              task.Plan.Strategy.String(),
		MaxTuples:             task.Limits.MaxTuples,
		MaxIntermediateTuples: task.Limits.MaxIntermediateTuples,
		Indexed:               task.Indexed,
		Workers:               task.Workers,
		IncludeResult:         true,
	}
	if !task.Limits.Deadline.IsZero() {
		ms := time.Until(task.Limits.Deadline).Milliseconds()
		if ms <= 0 {
			return nil, &govern.AbortError{Op: fmt.Sprintf("shard %d (%s)", i, peer), Sentinel: govern.ErrDeadline}
		}
		q.TimeoutMS = ms
	}
	body, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, &govern.AbortError{Op: fmt.Sprintf("shard %d (%s)", i, peer), Sentinel: govern.ErrCanceled, Cause: ctx.Err()}
		}
		return nil, fmt.Errorf("shard %d (%s): %w", i, peer, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return nil, fmt.Errorf("shard %d (%s): read response: %w", i, peer, err)
	}
	if resp.StatusCode != http.StatusOK {
		var eb remoteErrorBody
		_ = json.Unmarshal(raw, &eb)
		msg := fmt.Sprintf("shard %d (%s): %s: %s", i, peer, resp.Status, eb.Error)
		switch eb.Kind {
		case "resource_limit":
			return nil, &remoteAbort{sentinel: govern.ErrTupleBudget, msg: msg}
		case "deadline":
			return nil, &remoteAbort{sentinel: govern.ErrDeadline, msg: msg}
		case "canceled":
			return nil, &remoteAbort{sentinel: govern.ErrCanceled, msg: msg}
		default:
			return nil, fmt.Errorf("%s", msg)
		}
	}
	var qr remoteResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		return nil, fmt.Errorf("shard %d (%s): decode response: %w", i, peer, err)
	}
	if qr.Result == nil {
		return nil, fmt.Errorf("shard %d (%s): peer response carried no result relation", i, peer)
	}
	if qr.ResultTruncated {
		return nil, fmt.Errorf("shard %d (%s): peer truncated the shard result; raise the peer's result cap", i, peer)
	}
	return &Result{
		Output:   qr.Result,
		Cost:     qr.Cost,
		Produced: qr.Produced,
		Plan:     qr.Plan,
		Notes:    qr.Notes,
	}, nil
}
