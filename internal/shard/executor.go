package shard

import (
	"context"
	"runtime"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/relation"
)

// Task is one shard's slice of a scatter-gather query. In-process
// executors consume Plan, Limits, and Trace directly; remote executors
// consume the wire-friendly fields (Database, the plan's strategy name,
// and the limits re-encoded as the JSON query parameters).
type Task struct {
	// Database is the catalog name (remote executors address it on their
	// peer; in-process executors ignore it).
	Database string
	// Plan is the derived plan to execute, already resolved and searched.
	Plan *engine.Plan
	// Limits are this shard's governor limits — for in-process execution
	// they carry the shared govern.Pool; for remote execution MaxTuples
	// holds the full grant and the coordinator post-checks the sum.
	Limits govern.Limits
	// Workers is the per-shard intra-query worker count.
	Workers int
	// Indexed requests index-sharing program execution.
	Indexed bool
	// Trace, when non-nil, is this shard's span; per-shard execution hangs
	// its span tree off it.
	Trace *obs.Span
}

// Result is one shard's contribution: the shard's output tuples and the
// cost/charge totals its governor observed.
type Result struct {
	Output   *relation.Relation
	Cost     int64
	Produced int64
	Plan     string
	Notes    []string
}

// Executor runs one shard's task. Implementations: InProcess (shard
// databases in this process, sharing one govern.Pool) and HTTPExecutor
// (fan-out to remote joind peers over the existing JSON wire format).
// Both must pass the same differential gauntlet.
type Executor interface {
	// Shards returns how many shards the executor serves; it must match
	// the group's count.
	Shards() int
	// SharedBudget reports whether per-shard executions can share
	// in-process governor state. When true, Run hands every shard one
	// govern.Pool so the budget abort fires on the exact global produced
	// count; when false, each shard receives the full grant and Run
	// post-checks the summed charges against it.
	SharedBudget() bool
	// Execute runs shard i's task. The context cancels when a sibling
	// shard fails, so implementations should abandon work promptly.
	Execute(ctx context.Context, i int, task Task) (*Result, error)
}

// InProcess executes shard tasks against the group's own databases on this
// process's engine — the shard group execution mode.
type InProcess struct {
	g *Group
}

// NewInProcess returns the in-process executor for a group.
func NewInProcess(g *Group) *InProcess { return &InProcess{g: g} }

// Shards implements Executor.
func (e *InProcess) Shards() int { return e.g.Shards() }

// LocalParallelism tells Run to cap in-flight shard executions at this
// process's scheduler width: shard tasks here are CPU-bound local work, and
// oversubscribing GOMAXPROCS makes concurrent evaluations thrash the
// allocator and caches instead of finishing in waves. Remote executors
// don't implement this — their shards burn other machines' cores, so the
// coordinator fans out fully.
func (e *InProcess) LocalParallelism() int { return runtime.GOMAXPROCS(0) }

// SharedBudget implements Executor: in-process shards share one pool.
func (e *InProcess) SharedBudget() bool { return true }

// Execute implements Executor by running the plan on shard i's database.
// Cancellation arrives through task.Limits.Context, which Run wired to the
// scatter's shared context.
func (e *InProcess) Execute(_ context.Context, i int, task Task) (*Result, error) {
	rep, err := engine.ExecutePlan(e.g.DB(i), task.Plan, engine.Options{
		Limits:           task.Limits,
		Workers:          task.Workers,
		IndexedExecution: task.Indexed,
		Trace:            task.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Output:   rep.Result,
		Cost:     rep.Cost,
		Produced: rep.Produced,
		Plan:     rep.Plan,
		Notes:    rep.Notes,
	}, nil
}
