package shard_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/relation"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

// randomBatch draws one mutation batch against db: a few random inserts
// over each relation's schema plus deletions of existing rows.
func randomBatch(rng *rand.Rand, db *relation.Database) store.Batch {
	var batch store.Batch
	for i := 0; i < db.Len(); i++ {
		rel := db.Relation(i)
		m := store.Mutation{Relation: i}
		for k := 0; k < 1+rng.Intn(4); k++ {
			row := make(relation.Tuple, rel.Schema().Len())
			for c := range row {
				row[c] = relation.Int(int64(rng.Intn(8)))
			}
			m.Inserts = append(m.Inserts, row)
		}
		if rows := rel.Rows(); len(rows) > 0 && rng.Intn(2) == 0 {
			m.Deletes = append(m.Deletes, rows[rng.Intn(len(rows))])
		}
		batch = append(batch, m)
	}
	return batch
}

// applyReference applies a batch to the unsharded catalog — the oracle the
// rebased shard group is compared against.
func applyReference(db *relation.Database, batch store.Batch) (*relation.Database, error) {
	return store.ApplyBatch(db, batch)
}

// startPeers registers each shard's partition in its own service behind an
// httptest server and returns the HTTP executor over them.
func startPeers(t *testing.T, g *shard.Group) *shard.HTTPExecutor {
	t.Helper()
	peers := make([]string, g.Shards())
	for i := 0; i < g.Shards(); i++ {
		svc := service.New(service.Config{})
		if _, err := svc.Register(g.Name(), g.DB(i)); err != nil {
			t.Fatalf("peer %d: register: %v", i, err)
		}
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(srv.Close)
		peers[i] = srv.URL
	}
	return shard.NewHTTPExecutor(peers, nil)
}

// TestRemoteExecutorGauntlet runs the differential gauntlet through the
// HTTP executor: each shard is a real joind service behind httptest, and
// the scatter must still be observationally identical to sequential
// execution. The remote wire carries only the strategy name — each peer
// rederives its plan — so the gauntlet pins the strategies whose plans are
// functions of the scheme alone (direct's left-deep tree, leapfrog's
// variable order, the search-free acyclic pipeline): for those every peer
// provably executes the same plan the coordinator validated clean, and
// cost, charge, and abort-boundary parity carry over the wire. Instance-
// steered searches (expression, columnar, program) may legitimately pick
// different trees per partition; they are covered for result correctness.
func TestRemoteExecutorGauntlet(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cases := gauntletCases(t, rng, 8)
	deterministic := map[engine.Strategy]bool{
		engine.StrategyDirect:  true,
		engine.StrategyWCOJ:    true,
		engine.StrategyAcyclic: true,
	}
	trials, scatters := 0, 0
	for _, c := range cases {
		// Partition everything the attribute allows: thresholds are a
		// coordinator-side concern already covered in process.
		g, err := shard.NewGroup(c.name, c.db, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		ex := startPeers(t, g)
		for _, strat := range engine.Strategies() {
			plan, err := engine.PlanFor(c.db, engine.Options{Strategy: strat})
			if err != nil {
				continue
			}
			seq, err := engine.ExecutePlan(c.db, plan, engine.Options{Limits: govern.Limits{MaxTuples: hugeBudget}})
			if err != nil {
				t.Fatalf("%s/%s: sequential baseline: %v", c.name, strat, err)
			}
			tag := fmt.Sprintf("remote/%s/%s", c.name, strat)
			if deterministic[plan.Strategy] {
				if assertParity(t, tag, g, plan, ex, seq) {
					scatters++
				}
				assertAbortBoundary(t, tag, c.db, g, plan, ex, seq.Produced)
			} else {
				rep, err := shard.Run(g, plan, engine.Options{Limits: govern.Limits{MaxTuples: hugeBudget}}, ex)
				if err != nil {
					t.Fatalf("%s: run: %v", tag, err)
				}
				if !rep.Result.Equal(seq.Result) {
					t.Fatalf("%s: remote result (%d tuples) != sequential (%d tuples)",
						tag, rep.Result.Len(), seq.Result.Len())
				}
				if rep.Shards > 1 {
					scatters++
				}
			}
			trials++
		}
	}
	if scatters == 0 {
		t.Fatal("remote gauntlet never scattered")
	}
	t.Logf("remote gauntlet: %d cases, %d trials, %d scattered", len(cases), trials, scatters)
}

// TestRemoteExecutorAbortMapping asserts a peer's resource_limit error
// kind unwraps to the same govern sentinel an in-process abort carries, so
// coordinators treat remote and local aborts identically.
func TestRemoteExecutorAbortMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db, err := workload.TriangleSpec{Nodes: 10, Edges: 40}.TriangleDatabase(rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := shard.NewGroup("tri", db, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ex := startPeers(t, g)
	plan, err := engine.PlanFor(db, engine.Options{Strategy: engine.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	// A budget of 1 forces every peer to abort remotely (not just the
	// coordinator's gather post-check).
	_, err = shard.Run(g, plan, engine.Options{Limits: govern.Limits{MaxTuples: 1}}, ex)
	if !errors.Is(err, govern.ErrTupleBudget) {
		t.Fatalf("run under budget 1: got %v, want ErrTupleBudget", err)
	}
}
