package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/relation"
)

// Run executes a plan over the group with scatter-gather: each shard runs
// the plan on its partition via the executor, and the disjoint per-shard
// outputs merge into one relation. Plans the cleanliness analysis rejects
// (Group.CleanFor) execute unsharded on the full catalog instead, so the
// returned report's Cost and Produced always equal a sequential
// execution's, and a MaxTuples abort fires at the same boundary: shards
// sharing a budget pool abort when their collective charges first exceed
// the grant; executors without a shared budget are post-checked.
//
// opts carries the query's sequential limits; Run derives the per-shard
// limits from them. opts.Strategy and opts.Budget are ignored (the plan
// fixed both, as with engine.ExecutePlan).
func Run(g *Group, plan *engine.Plan, opts engine.Options, ex Executor) (*engine.Report, error) {
	if g == nil {
		return nil, fmt.Errorf("shard: nil group")
	}
	if ex == nil {
		return nil, fmt.Errorf("shard: nil executor")
	}
	if ex.Shards() != g.Shards() {
		return nil, fmt.Errorf("shard: executor serves %d shards, group has %d", ex.Shards(), g.Shards())
	}
	if g.Shards() == 1 {
		rep, err := engine.ExecutePlan(g.Full(), plan, opts)
		if rep != nil {
			rep.Shards = 1
		}
		return rep, err
	}
	if ok, reason := g.CleanFor(plan); !ok {
		rep, err := engine.ExecutePlan(g.Full(), plan, opts)
		if err != nil {
			return nil, err
		}
		rep.Shards = 1
		rep.Notes = append(rep.Notes, "scatter skipped: "+reason)
		return rep, nil
	}

	n := g.Shards()
	lim := opts.Limits
	base := lim.Context
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()
	shLim := lim
	shLim.Context = ctx
	if ex.SharedBudget() && lim.MaxTuples > 0 {
		// One pool for all shards: the collective abort boundary is the
		// sequential MaxTuples boundary exactly. MaxIntermediateTuples
		// stays per shard (a per-operator cap has no cross-shard meaning).
		shLim.Pool = govern.NewPool(lim.MaxTuples)
		shLim.MaxTuples = 0
	}
	perShardWorkers := opts.Workers / n
	if perShardWorkers < 1 {
		perShardWorkers = 1
	}

	// Executors whose shards consume this process's CPUs bound the fan-out
	// (see InProcess.LocalParallelism); remote fan-out is unbounded. A
	// queued shard that starts after a sibling's failure observes the shared
	// context already canceled and returns promptly.
	inFlight := n
	if lp, ok := ex.(interface{ LocalParallelism() int }); ok {
		if w := lp.LocalParallelism(); w > 0 && w < inFlight {
			inFlight = w
		}
	}
	sem := make(chan struct{}, inFlight)

	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		task := Task{
			Database: g.Name(),
			Plan:     plan,
			Limits:   shLim,
			Workers:  perShardWorkers,
			Indexed:  opts.IndexedExecution,
		}
		if opts.Trace != nil {
			task.Trace = opts.Trace.Child(obs.KindExecute, fmt.Sprintf("shard %d/%d", i, n))
		}
		wg.Add(1)
		go func(i int, task Task) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := ex.Execute(ctx, i, task)
			if task.Trace != nil {
				if err != nil {
					task.Trace.Note("failed: %v", err)
				}
				task.Trace.End()
			}
			results[i], errs[i] = res, err
			if err != nil {
				cancel()
			}
		}(i, task)
	}
	wg.Wait()
	if err := gatherError(errs); err != nil {
		return nil, err
	}

	schema := results[0].Output.Schema()
	attrPos, ok := schema.Position(g.Attr())
	if !ok {
		// Clean plans retain the partition attribute in the output (the full
		// join carries every attribute; program cleanliness checks heads).
		return nil, fmt.Errorf("shard: merge: output schema %v lost partition attribute %q", schema.Attrs(), g.Attr())
	}
	// Permute each shard's rows into shard 0's column order (remote peers
	// may evaluate a differently-shaped but equivalent tree) and verify the
	// partitioning invariant: every output tuple must hash to the shard that
	// produced it, which also proves the shard outputs pairwise disjoint.
	// One goroutine per shard — this is the gather's row-copy work, and
	// serializing it would dominate large results.
	rows := make([][]relation.Tuple, n)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := results[i]
			pos, err := r.Output.Schema().Positions(schema.Attrs())
			if err != nil {
				errs[i] = fmt.Errorf("shard: merge: shard %d output schema %v does not match %v: %w",
					i, r.Output.Schema().Attrs(), schema.Attrs(), err)
				return
			}
			identity := true
			for c, p := range pos {
				if c != p {
					identity = false
					break
				}
			}
			out := r.Output.Rows()
			if !identity {
				out = make([]relation.Tuple, len(out))
				for k, t := range r.Output.Rows() {
					row := make(relation.Tuple, len(pos))
					for c, p := range pos {
						row[c] = t[p]
					}
					out[k] = row
				}
			}
			for _, row := range out {
				if own := row.ShardOf(attrPos, n); own != i {
					errs[i] = fmt.Errorf("shard: merge: shard %d produced a tuple owned by shard %d — partitioning invariant violated", i, own)
					return
				}
			}
			rows[i] = out
		}(i)
	}
	wg.Wait()
	if err := gatherError(errs); err != nil {
		return nil, err
	}
	total := 0
	for _, rs := range rows {
		total += len(rs)
	}
	all := make([]relation.Tuple, 0, total)
	var produced, cost int64
	for i, rs := range rows {
		all = append(all, rs...)
		produced += results[i].Produced
		cost += results[i].Cost
	}
	merged, err := relation.NewFromDistinctRows(schema, all)
	if err != nil {
		return nil, fmt.Errorf("shard: merge: %w", err)
	}
	// Every shard counts the broadcast relations among its inputs; the
	// sequential cost counts them once.
	cost -= int64(n-1) * g.BroadcastTuples()
	if !ex.SharedBudget() && lim.MaxTuples > 0 && produced > lim.MaxTuples {
		return nil, &govern.LimitError{Op: "shard.gather", Limit: "MaxTuples", Max: lim.MaxTuples, Produced: produced}
	}
	rep := &engine.Report{
		Result:      merged,
		Strategy:    plan.Strategy,
		Cost:        cost,
		Produced:    produced,
		Plan:        results[0].Plan,
		Notes:       append([]string(nil), results[0].Notes...),
		Parallelism: perShardWorkers,
		Shards:      n,
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("scatter-gather: %d shards partitioned on %q (%d partitioned, %d broadcast relations)",
		n, g.Attr(), g.PartitionedCount(), len(g.part)-g.PartitionedCount()))
	return rep, nil
}

// gatherError picks the error to surface from a scatter: a budget abort
// wins (the parity-relevant signal; sibling shards observe the shared
// cancellation and report ErrCanceled), then a deadline, then any error
// that is not a secondary cancellation, then anything.
func gatherError(errs []error) error {
	for _, e := range errs {
		if e != nil && errors.Is(e, govern.ErrTupleBudget) {
			return e
		}
	}
	for _, e := range errs {
		if e != nil && errors.Is(e, govern.ErrDeadline) {
			return e
		}
	}
	for _, e := range errs {
		if e != nil && !errors.Is(e, govern.ErrCanceled) {
			return e
		}
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
