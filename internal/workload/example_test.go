package workload_test

import (
	"fmt"
	"log"

	"repro/internal/workload"
)

// ExampleExample3 shows the paper-shaped instance: relation sizes q³, q²,
// q, q² around the 4-cycle, pairwise consistent, with a one-tuple join.
func ExampleExample3() {
	spec, err := workload.Example3(10) // the paper's k = 1
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sizes:", spec.Sizes())
	db, err := spec.CycleDatabase()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairwise consistent:", db.PairwiseConsistent())
	fmt.Println("|⋈D| =", db.Join().Len())
	// Output:
	// sizes: [1001 101 11 101]
	// pairwise consistent: true
	// |⋈D| = 1
}

// ExampleCycleSpec_AnalyticSizer computes exact intermediate sizes for a
// scale no engine could materialize.
func ExampleCycleSpec_AnalyticSizer() {
	spec, err := workload.Example3(1000) // the paper's k = 3
	if err != nil {
		log.Fatal(err)
	}
	sizer, err := spec.AnalyticSizer()
	if err != nil {
		log.Fatal(err)
	}
	full, err := sizer.Size(sizer.Hypergraph().Full())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("|⋈D| =", full)
	fmt.Println("|R1| =", spec.Sizes()[0])
	// Output:
	// |⋈D| = 1
	// |R1| = 1000000001
}
