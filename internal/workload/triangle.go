package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// TriangleSpec parameterizes the canonical cyclic query: the triangle join
// R(A,B) ⋈ S(B,C) ⋈ T(C,A) over copies of a random directed edge relation.
// The scheme {AB, BC, CA} is the smallest cyclic scheme; its join counts
// the directed triangles of the graph, and its only intermediates are
// 2-paths — typically far larger than the triangle count, which is exactly
// the regime where semijoin programs help.
type TriangleSpec struct {
	// Nodes is the number of graph vertices.
	Nodes int
	// Edges is the number of distinct directed edges to draw.
	Edges int
}

// TriangleDatabase draws one random edge set and instantiates the three
// relations over it.
func (s TriangleSpec) TriangleDatabase(rng *rand.Rand) (*relation.Database, error) {
	if s.Nodes < 2 || s.Edges < 1 {
		return nil, fmt.Errorf("workload: triangle spec needs ≥ 2 nodes and ≥ 1 edge")
	}
	maxEdges := s.Nodes * (s.Nodes - 1)
	if s.Edges > maxEdges {
		return nil, fmt.Errorf("workload: %d edges exceed the %d possible", s.Edges, maxEdges)
	}
	type edge struct{ from, to int64 }
	seen := make(map[edge]bool, s.Edges)
	for len(seen) < s.Edges {
		e := edge{int64(rng.Intn(s.Nodes)), int64(rng.Intn(s.Nodes))}
		if e.from == e.to {
			continue
		}
		seen[e] = true
	}
	mk := func(a, b string) *relation.Relation {
		r := relation.New(relation.MustSchema(a, b))
		for e := range seen {
			r.MustInsert(relation.Ints(e.from, e.to))
		}
		return r
	}
	return relation.NewDatabase(mk("A", "B"), mk("B", "C"), mk("C", "A"))
}
