package workload

import (
	"embed"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// The adversarial estimation corpus: checked-in query shapes known to wreck
// cardinality estimators and binary join planners — unfiltered joins
// (Cartesian products), filters arriving after the product, star fan-outs,
// self-joins over duplicated data, products of unrelated predicates, and
// skewed cycles. The shapes follow the classic cartesian-explosion stress
// suites for Datalog engines; each case is sized so every engine strategy
// finishes within the case's tuple budget, which is what makes the corpus a
// gauntlet rather than a denial-of-service: a strategy (or the hybrid
// chooser) that mishandles the shape blows the budget and fails loudly,
// instead of hanging CI.
//
// The corpus lives in testdata/adversarial/*.json and is embedded, so
// loading it needs no working directory: engine differential tests,
// estimator acceptance tests, and the joinbench gauntlet (EX13) all read
// the same cases.

//go:embed testdata/adversarial/*.json
var adversarialFS embed.FS

// AdversarialCase is one corpus entry.
type AdversarialCase struct {
	// Name is the unique case identifier (the file's base name by
	// convention).
	Name string `json:"name"`
	// Shape documents which explosion pattern the case encodes.
	Shape string `json:"shape"`
	// Scheme is the hypergraph in ParseScheme notation ("AB CD AD").
	Scheme string `json:"scheme"`
	// Generator fills the relations: "uniform" (independent uniform
	// tuples), "zipf" (Zipf-skewed values, exponent Skew), or "identical"
	// (every relation holds the same uniform tuple set — the self-join
	// shape).
	Generator string `json:"generator"`
	// Size is the tuple count per relation; Domain the value domain.
	Size   int `json:"size"`
	Domain int `json:"domain"`
	// Skew is the Zipf exponent (> 1), used only by the zipf generator.
	Skew float64 `json:"skew,omitempty"`
	// Seed makes the instance deterministic.
	Seed int64 `json:"seed"`
	// Budget is the governor MaxTuples allowance every strategy must finish
	// under — the gauntlet bound.
	Budget int64 `json:"budget"`
	// QErrorBound is the acceptance bound on the hybrid chooser's cost
	// estimate: max(est/actual, actual/est) must stay at or below it.
	QErrorBound float64 `json:"qerror_bound"`
}

// Hypergraph parses the case's scheme.
func (c AdversarialCase) Hypergraph() (*hypergraph.Hypergraph, error) {
	return hypergraph.ParseScheme(c.Scheme)
}

// Database builds the case's deterministic instance.
func (c AdversarialCase) Database() (*relation.Database, error) {
	h, err := c.Hypergraph()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	switch c.Generator {
	case "uniform":
		return RandomDatabase(rng, h, c.Size, c.Domain)
	case "zipf":
		return ZipfDatabase(rng, h, c.Size, c.Domain, c.Skew)
	case "identical":
		// One tuple set, shared by every relation: binary self-join shapes
		// ("all pairs of people") where every row matches every row through
		// the shared attributes.
		rows := make([]relation.Tuple, 0, c.Size)
		arity := len(h.Edge(0))
		for k := 0; k < c.Size; k++ {
			row := make(relation.Tuple, arity)
			for j := range row {
				row[j] = relation.Int(int64(rng.Intn(c.Domain)))
			}
			rows = append(rows, row)
		}
		rels := make([]*relation.Relation, h.Len())
		for i := 0; i < h.Len(); i++ {
			if len(h.Edge(i)) != arity {
				return nil, fmt.Errorf("workload: identical generator needs uniform arity in %q", c.Name)
			}
			rel := relation.New(relation.MustSchema(h.Edge(i)...))
			for _, row := range rows {
				_ = rel.Insert(row)
			}
			rels[i] = rel
		}
		return relation.NewDatabase(rels...)
	default:
		return nil, fmt.Errorf("workload: case %q has unknown generator %q", c.Name, c.Generator)
	}
}

// Validate checks one case is well-formed and generable.
func (c AdversarialCase) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("workload: adversarial case without a name")
	case strings.TrimSpace(c.Scheme) == "":
		return fmt.Errorf("workload: case %q has no scheme", c.Name)
	case c.Size < 1 || c.Domain < 1:
		return fmt.Errorf("workload: case %q needs positive size and domain", c.Name)
	case c.Budget < 1:
		return fmt.Errorf("workload: case %q has no tuple budget", c.Name)
	case c.QErrorBound < 1:
		return fmt.Errorf("workload: case %q q-error bound %v below the identity 1", c.Name, c.QErrorBound)
	case c.Generator == "zipf" && c.Skew <= 1:
		return fmt.Errorf("workload: case %q needs Zipf exponent > 1, got %v", c.Name, c.Skew)
	}
	if _, err := c.Hypergraph(); err != nil {
		return fmt.Errorf("workload: case %q scheme: %w", c.Name, err)
	}
	return nil
}

// AdversarialCases loads and validates the embedded corpus, sorted by name.
func AdversarialCases() ([]AdversarialCase, error) {
	entries, err := adversarialFS.ReadDir("testdata/adversarial")
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	cases := make([]AdversarialCase, 0, len(entries))
	for _, e := range entries {
		raw, err := adversarialFS.ReadFile("testdata/adversarial/" + e.Name())
		if err != nil {
			return nil, err
		}
		var c AdversarialCase
		if err := json.Unmarshal(raw, &c); err != nil {
			return nil, fmt.Errorf("workload: %s: %w", e.Name(), err)
		}
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("workload: duplicate adversarial case %q", c.Name)
		}
		seen[c.Name] = true
		cases = append(cases, c)
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("workload: embedded adversarial corpus is empty")
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	return cases, nil
}
