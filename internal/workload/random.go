package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// RandomSchemeSpec parameterizes random scheme generation.
type RandomSchemeSpec struct {
	// Relations is the number of relation scheme occurrences.
	Relations int
	// Attrs is the size of the attribute pool ("a0", "a1", …).
	Attrs int
	// MaxArity bounds each relation scheme's size (arity is uniform in
	// [1, MaxArity]).
	MaxArity int
	// Connected requires the resulting hypergraph to be connected
	// (regenerate until it is).
	Connected bool
}

// RandomScheme draws a scheme from the spec using rng. With Connected set it
// retries until the hypergraph is connected (the spec must make that
// possible, e.g. MaxArity ≥ 2 for more than one relation).
func RandomScheme(rng *rand.Rand, spec RandomSchemeSpec) (*hypergraph.Hypergraph, error) {
	if spec.Relations < 1 || spec.Relations > 64 {
		return nil, fmt.Errorf("workload: relations must be in [1,64], got %d", spec.Relations)
	}
	if spec.Attrs < 1 || spec.MaxArity < 1 {
		return nil, fmt.Errorf("workload: attrs and max arity must be positive")
	}
	pool := make([]string, spec.Attrs)
	for i := range pool {
		pool[i] = fmt.Sprintf("a%d", i)
	}
	for attempt := 0; attempt < 10_000; attempt++ {
		edges := make([]relation.AttrSet, spec.Relations)
		for i := range edges {
			arity := 1 + rng.Intn(spec.MaxArity)
			picks := make([]string, arity)
			for j := range picks {
				picks[j] = pool[rng.Intn(spec.Attrs)]
			}
			edges[i] = relation.NewAttrSet(picks...)
		}
		h, err := hypergraph.New(edges)
		if err != nil {
			continue
		}
		if spec.Connected && !h.Connected(h.Full()) {
			continue
		}
		return h, nil
	}
	return nil, fmt.Errorf("workload: could not draw a%s scheme for %+v",
		map[bool]string{true: " connected", false: ""}[spec.Connected], spec)
}

// RandomDatabase fills each relation of the scheme with up to size random
// tuples over the integer domain [0, domain). Small domains force dense join
// matches; large domains make joins sparse.
func RandomDatabase(rng *rand.Rand, h *hypergraph.Hypergraph, size, domain int) (*relation.Database, error) {
	if size < 0 || domain < 1 {
		return nil, fmt.Errorf("workload: need size ≥ 0 and domain ≥ 1")
	}
	rels := make([]*relation.Relation, h.Len())
	for i := 0; i < h.Len(); i++ {
		schema := relation.MustSchema(h.Edge(i)...)
		rel := relation.New(schema)
		for k := 0; k < size; k++ {
			row := make(relation.Tuple, schema.Len())
			for c := range row {
				row[c] = relation.Int(int64(rng.Intn(domain)))
			}
			rel.MustInsert(row)
		}
		rels[i] = rel
	}
	return relation.NewDatabase(rels...)
}

// ChainScheme returns the acyclic scheme R1(x0,x1), R2(x1,x2), …,
// Rn(x_{n-1},x_n): a path of binary relations.
func ChainScheme(n int) (*hypergraph.Hypergraph, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: chain needs at least one relation")
	}
	edges := make([]relation.AttrSet, n)
	for i := 0; i < n; i++ {
		edges[i] = relation.NewAttrSet(fmt.Sprintf("x%d", i), fmt.Sprintf("x%d", i+1))
	}
	return hypergraph.New(edges)
}

// StarScheme returns the acyclic scheme R1(hub,x1), …, Rn(hub,xn): n binary
// relations sharing a hub attribute.
func StarScheme(n int) (*hypergraph.Hypergraph, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: star needs at least one relation")
	}
	edges := make([]relation.AttrSet, n)
	for i := 0; i < n; i++ {
		edges[i] = relation.NewAttrSet("hub", fmt.Sprintf("x%d", i+1))
	}
	return hypergraph.New(edges)
}

// CliqueScheme returns the cyclic scheme with one binary relation per pair
// of n attributes — maximally cyclic for n ≥ 3.
func CliqueScheme(n int) (*hypergraph.Hypergraph, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: clique needs at least two attributes")
	}
	var edges []relation.AttrSet
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, relation.NewAttrSet(fmt.Sprintf("x%d", i), fmt.Sprintf("x%d", j)))
		}
	}
	return hypergraph.New(edges)
}

// ChainDatabase builds a database over ChainScheme(n) where each relation is
// the "successor" relation on [0, domain): tuples (v, v+1). The chain join
// then has domain−n+1 tuples (ascending runs), a convenient acyclic
// workload with known output size.
func ChainDatabase(n, domain int) (*relation.Database, error) {
	h, err := ChainScheme(n)
	if err != nil {
		return nil, err
	}
	rels := make([]*relation.Relation, n)
	for i := 0; i < n; i++ {
		schema := relation.MustSchema(fmt.Sprintf("x%d", i), fmt.Sprintf("x%d", i+1))
		rel := relation.New(schema)
		for v := 0; v < domain-1; v++ {
			rel.MustInsert(relation.Ints(int64(v), int64(v+1)))
		}
		rels[i] = rel
	}
	_ = h
	return relation.NewDatabase(rels...)
}

// DanglingChainDatabase is ChainDatabase with extra dangling tuples added to
// each relation that no full chain passes through — the classical workload
// where a full reducer pays off.
func DanglingChainDatabase(n, domain, dangling int) (*relation.Database, error) {
	db, err := ChainDatabase(n, domain)
	if err != nil {
		return nil, err
	}
	for i := 0; i < db.Len(); i++ {
		rel := db.Relation(i)
		for d := 0; d < dangling; d++ {
			// Values far outside the domain, unique per relation, so the
			// tuples join with nothing.
			base := int64(1000 + 100*i + d)
			rel.MustInsert(relation.Ints(base, -base))
		}
	}
	return db, nil
}
