package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// ZipfDatabase fills each relation of the scheme with up to size tuples
// whose attribute values follow a Zipf distribution over [0, domain): a few
// heavy values dominate, the tail is long. s > 1 controls the skew (larger
// = more skewed). Skewed data is where independence-assumption estimators
// go wrong and where join orders matter most.
func ZipfDatabase(rng *rand.Rand, h *hypergraph.Hypergraph, size, domain int, s float64) (*relation.Database, error) {
	if size < 0 || domain < 1 {
		return nil, fmt.Errorf("workload: need size ≥ 0 and domain ≥ 1")
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf exponent must exceed 1, got %v", s)
	}
	zipf := rand.NewZipf(rng, s, 1, uint64(domain-1))
	rels := make([]*relation.Relation, h.Len())
	for i := 0; i < h.Len(); i++ {
		schema := relation.MustSchema(h.Edge(i)...)
		rel := relation.New(schema)
		for k := 0; k < size; k++ {
			row := make(relation.Tuple, schema.Len())
			for c := range row {
				row[c] = relation.Int(int64(zipf.Uint64()))
			}
			rel.MustInsert(row)
		}
		rels[i] = rel
	}
	return relation.NewDatabase(rels...)
}

// StarJoinSpec parameterizes a star-join (fact + dimensions) workload: the
// classical warehouse shape, and an acyclic scheme where join order still
// matters because dimension selectivities differ.
type StarJoinSpec struct {
	// Dimensions is the number of dimension tables (≥ 1).
	Dimensions int
	// FactRows is the fact table's size.
	FactRows int
	// DimRows[i] is dimension i's size; keys in the fact table reference
	// dimension rows uniformly, and MissRate of fact keys dangle (reference
	// no dimension row), so semijoin reduction has work to do.
	DimRows []int
	// MissRate in [0,1) is the fraction of fact foreign keys that dangle.
	MissRate float64
}

// StarJoin builds the scheme and database: fact(k1..kd, m) with one key per
// dimension plus a measure column, and dim_i(k_i, a_i) with a payload
// attribute. The scheme is acyclic (a star around the fact table).
func StarJoin(rng *rand.Rand, spec StarJoinSpec) (*relation.Database, error) {
	if spec.Dimensions < 1 || len(spec.DimRows) != spec.Dimensions {
		return nil, fmt.Errorf("workload: need DimRows for each of the %d dimensions", spec.Dimensions)
	}
	if spec.MissRate < 0 || spec.MissRate >= 1 {
		return nil, fmt.Errorf("workload: miss rate must be in [0,1), got %v", spec.MissRate)
	}
	factAttrs := make([]string, 0, spec.Dimensions+1)
	for i := 0; i < spec.Dimensions; i++ {
		factAttrs = append(factAttrs, fmt.Sprintf("k%d", i))
	}
	factAttrs = append(factAttrs, "measure")
	fact := relation.New(relation.MustSchema(factAttrs...))
	for r := 0; r < spec.FactRows; r++ {
		row := make(relation.Tuple, spec.Dimensions+1)
		for i := 0; i < spec.Dimensions; i++ {
			key := int64(rng.Intn(maxInt(spec.DimRows[i], 1)))
			if rng.Float64() < spec.MissRate {
				key = int64(spec.DimRows[i]) + int64(rng.Intn(spec.DimRows[i]+1)) // dangling key
			}
			row[i] = relation.Int(key)
		}
		row[spec.Dimensions] = relation.Int(int64(r))
		fact.MustInsert(row)
	}
	rels := []*relation.Relation{fact}
	for i := 0; i < spec.Dimensions; i++ {
		dim := relation.New(relation.MustSchema(fmt.Sprintf("k%d", i), fmt.Sprintf("a%d", i)))
		for k := 0; k < spec.DimRows[i]; k++ {
			dim.MustInsert(relation.Ints(int64(k), int64(k%7)))
		}
		rels = append(rels, dim)
	}
	return relation.NewDatabase(rels...)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
