package workload

import (
	"testing"
)

// TestAdversarialCorpusLoads: the embedded corpus parses, validates, and
// generates deterministically, and every explosion shape named in the
// corpus design is represented.
func TestAdversarialCorpusLoads(t *testing.T) {
	cases, err := AdversarialCases()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 6 {
		t.Fatalf("corpus has %d cases, want at least 6", len(cases))
	}
	wantNames := []string{
		"late_filter", "product_pair", "self_join_pairs",
		"skewed_cycle", "star_fanout", "triple_product", "unrelated_unary",
	}
	byName := map[string]AdversarialCase{}
	for _, c := range cases {
		byName[c.Name] = c
	}
	for _, n := range wantNames {
		if _, ok := byName[n]; !ok {
			t.Errorf("corpus missing case %q", n)
		}
	}

	for _, c := range cases {
		h, err := c.Hypergraph()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		db, err := c.Database()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if db.Len() != h.Len() {
			t.Fatalf("%s: %d relations for %d edges", c.Name, db.Len(), h.Len())
		}
		// Deterministic: a second build is tuple-identical.
		db2, err := c.Database()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < db.Len(); i++ {
			if !db.Relation(i).Equal(db2.Relation(i)) {
				t.Fatalf("%s: relation %d not deterministic across builds", c.Name, i)
			}
		}
	}

	// The gauntlet needs both acyclic product shapes and a cyclic core.
	cyclic := 0
	for _, c := range cases {
		h, _ := c.Hypergraph()
		if !h.Acyclic() {
			cyclic++
		}
	}
	if cyclic == 0 {
		t.Fatal("corpus has no cyclic case")
	}
}

// TestAdversarialCaseValidation rejects the malformed shapes the loader
// must refuse.
func TestAdversarialCaseValidation(t *testing.T) {
	good := AdversarialCase{
		Name: "x", Scheme: "AB BC", Generator: "uniform",
		Size: 10, Domain: 5, Seed: 1, Budget: 100, QErrorBound: 2,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid case rejected: %v", err)
	}
	bad := []AdversarialCase{
		{},
		{Name: "x", Scheme: "", Generator: "uniform", Size: 10, Domain: 5, Budget: 100, QErrorBound: 2},
		{Name: "x", Scheme: "AB", Generator: "uniform", Size: 0, Domain: 5, Budget: 100, QErrorBound: 2},
		{Name: "x", Scheme: "AB", Generator: "uniform", Size: 10, Domain: 5, Budget: 0, QErrorBound: 2},
		{Name: "x", Scheme: "AB", Generator: "uniform", Size: 10, Domain: 5, Budget: 100, QErrorBound: 0.5},
		{Name: "x", Scheme: "AB", Generator: "zipf", Skew: 1, Size: 10, Domain: 5, Budget: 100, QErrorBound: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad case %d accepted", i)
		}
	}
	if _, err := (AdversarialCase{
		Name: "x", Scheme: "AB", Generator: "nope",
		Size: 10, Domain: 5, Budget: 100, QErrorBound: 2,
	}).Database(); err == nil {
		t.Error("unknown generator accepted")
	}
}
