package workload

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/optimizer"
	"repro/internal/relation"
)

func TestCycleSchemeMatchesPaper(t *testing.T) {
	spec := UniformCycle(4, 2, 3)
	h, err := spec.CycleScheme()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ABC", "CDE", "EFG", "GHA"}
	for i, w := range want {
		if h.DisplayName(i) != w {
			t.Errorf("scheme %d = %s, want %s", i, h.DisplayName(i), w)
		}
	}
	if !h.Connected(h.Full()) {
		t.Error("cycle scheme should be connected")
	}
	if h.Acyclic() {
		t.Error("cycle scheme should be cyclic")
	}
}

func TestCycleSpecValidate(t *testing.T) {
	bad := []CycleSpec{
		{Relations: 2, M: 2, Payloads: []int64{1, 1}},
		{Relations: 14, M: 2, Payloads: make([]int64, 14)},
		{Relations: 4, M: 1, Payloads: []int64{1, 1, 1, 1}},
		{Relations: 4, M: 2, Payloads: []int64{1, 1, 1}},
		{Relations: 4, M: 2, Payloads: []int64{1, 0, 1, 1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	if err := UniformCycle(4, 2, 1).Validate(); err != nil {
		t.Errorf("minimal valid spec rejected: %v", err)
	}
}

func TestCycleDatabaseProperties(t *testing.T) {
	for _, spec := range []CycleSpec{
		UniformCycle(4, 2, 3),
		UniformCycle(4, 5, 2),
		UniformCycle(5, 3, 2),
		UniformCycle(3, 4, 2),
		{Relations: 4, M: 2, Payloads: []int64{8, 4, 2, 4}},
	} {
		db, err := spec.CycleDatabase()
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		// Sizes: M·p + 1.
		for i, want := range spec.Sizes() {
			if got := int64(db.Relation(i).Len()); got != want {
				t.Errorf("%+v: relation %d has %d tuples, want %d", spec, i, got, want)
			}
		}
		// Pairwise consistent but not globally: ⋈D is exactly the Bottom
		// tuple.
		if !db.PairwiseConsistent() {
			t.Errorf("%+v: not pairwise consistent", spec)
		}
		full := db.Join()
		if full.Len() != 1 {
			t.Fatalf("%+v: ⋈D has %d tuples, want 1", spec, full.Len())
		}
		if db.GloballyConsistentWith(full) {
			t.Errorf("%+v: unexpectedly globally consistent", spec)
		}
		for _, v := range full.Rows()[0] {
			if v.AsInt() != Bottom && v.AsInt() != 0 {
				t.Errorf("%+v: surviving tuple %v is not the Bottom tuple", spec, full.Rows()[0])
			}
		}
	}
}

func TestExample3Spec(t *testing.T) {
	spec, err := Example3(10)
	if err != nil {
		t.Fatal(err)
	}
	sizes := spec.Sizes()
	want := []int64{1001, 101, 11, 101} // q³+1, q²+1, q+1, q²+1
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("size %d = %d, want %d", i, sizes[i], want[i])
		}
	}
	if _, err := Example3(3); err == nil {
		t.Error("odd scale accepted")
	}
	if _, err := Example3(0); err == nil {
		t.Error("zero scale accepted")
	}
}

// TestAnalyticSizerMatchesCatalog is the load-bearing cross-check: the
// closed-form sizes must agree with the measuring catalog on every subset.
func TestAnalyticSizerMatchesCatalog(t *testing.T) {
	for _, spec := range []CycleSpec{
		UniformCycle(4, 2, 3),
		UniformCycle(5, 3, 2),
		UniformCycle(3, 4, 3),
		{Relations: 4, M: 2, Payloads: []int64{8, 4, 2, 4}},
	} {
		db, err := spec.CycleDatabase()
		if err != nil {
			t.Fatal(err)
		}
		analytic, err := spec.AnalyticSizer()
		if err != nil {
			t.Fatal(err)
		}
		catalog := optimizer.NewCatalog(db, 0)
		h := analytic.Hypergraph()
		for mask := hypergraph.Mask(1); mask <= h.Full(); mask++ {
			want, err := catalog.Size(mask)
			if err != nil {
				t.Fatal(err)
			}
			got, err := analytic.Size(mask)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%+v: analytic Size(%v) = %d, measured %d", spec, mask, got, want)
			}
		}
	}
}

// TestAnalyticOptimalMatchesMeasured: the exact DPs must pick the same
// optimal costs whether sizes are measured or computed in closed form.
func TestAnalyticOptimalMatchesMeasured(t *testing.T) {
	spec, err := Example3(6)
	if err != nil {
		t.Fatal(err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := spec.AnalyticSizer()
	if err != nil {
		t.Fatal(err)
	}
	catalog := optimizer.NewCatalog(db, 0)
	for _, space := range []optimizer.Space{
		optimizer.SpaceAll, optimizer.SpaceCPF, optimizer.SpaceLinear, optimizer.SpaceLinearCPF,
	} {
		a, err := optimizer.Optimal(analytic, space)
		if err != nil {
			t.Fatalf("analytic Optimal(%s): %v", space, err)
		}
		m, err := optimizer.Optimal(catalog, space)
		if err != nil {
			t.Fatalf("measured Optimal(%s): %v", space, err)
		}
		if a.Cost != m.Cost {
			t.Errorf("Optimal(%s): analytic %d, measured %d", space, a.Cost, m.Cost)
		}
	}
}

func TestNonCPFCycleExpression(t *testing.T) {
	spec := UniformCycle(4, 2, 2)
	h, err := spec.CycleScheme()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := spec.NonCPFCycleExpression()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(h); err != nil {
		t.Fatal(err)
	}
	if tr.IsCPF(h) {
		t.Error("opposite-pair expression should not be CPF")
	}
	// Longer cycle.
	spec5 := UniformCycle(5, 2, 2)
	h5, err := spec5.CycleScheme()
	if err != nil {
		t.Fatal(err)
	}
	tr5, err := spec5.NonCPFCycleExpression()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr5.Validate(h5); err != nil {
		t.Fatal(err)
	}
	if tr5.IsCPF(h5) {
		t.Error("5-cycle expression should not be CPF")
	}
}

func TestRandomScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, err := RandomScheme(rng, RandomSchemeSpec{Relations: 5, Attrs: 6, MaxArity: 3, Connected: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 5 || !h.Connected(h.Full()) {
		t.Errorf("RandomScheme = %s", h)
	}
	if _, err := RandomScheme(rng, RandomSchemeSpec{Relations: 0}); err == nil {
		t.Error("bad spec accepted")
	}
	// Impossible connectivity request must fail after bounded retries: two
	// relations of arity 1 over 2 attributes can be disconnected, but with 1
	// attribute they always connect; use attrs=2, arity=1, relations=2 —
	// sometimes connect; instead force impossibility with disjoint pools.
	if _, err := RandomScheme(rng, RandomSchemeSpec{Relations: 2, Attrs: 1, MaxArity: 1, Connected: true}); err != nil {
		t.Errorf("always-connected spec failed: %v", err)
	}
}

func TestRandomDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h, err := RandomScheme(rng, RandomSchemeSpec{Relations: 3, Attrs: 5, MaxArity: 3, Connected: true})
	if err != nil {
		t.Fatal(err)
	}
	db, err := RandomDatabase(rng, h, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Errorf("database has %d relations", db.Len())
	}
	for i := 0; i < db.Len(); i++ {
		if db.Relation(i).Len() > 20 {
			t.Errorf("relation %d has %d tuples, want ≤ 20", i, db.Relation(i).Len())
		}
		if !db.Relation(i).Schema().AttrSet().Equal(h.Edge(i)) {
			t.Errorf("relation %d schema mismatch", i)
		}
	}
	if _, err := RandomDatabase(rng, h, -1, 4); err == nil {
		t.Error("negative size accepted")
	}
}

func TestSchemeShapes(t *testing.T) {
	chain, err := ChainScheme(4)
	if err != nil {
		t.Fatal(err)
	}
	if !chain.Acyclic() || !chain.Connected(chain.Full()) {
		t.Error("chain should be acyclic and connected")
	}
	star, err := StarScheme(5)
	if err != nil {
		t.Fatal(err)
	}
	if !star.Acyclic() || !star.Connected(star.Full()) {
		t.Error("star should be acyclic and connected")
	}
	clique, err := CliqueScheme(4)
	if err != nil {
		t.Fatal(err)
	}
	if clique.Len() != 6 {
		t.Errorf("K4 clique has %d edges, want 6", clique.Len())
	}
	if clique.Acyclic() {
		t.Error("clique on 4 attributes should be cyclic")
	}
	// Degenerate sizes rejected.
	if _, err := ChainScheme(0); err == nil {
		t.Error("0-chain accepted")
	}
	if _, err := StarScheme(0); err == nil {
		t.Error("0-star accepted")
	}
	if _, err := CliqueScheme(1); err == nil {
		t.Error("1-clique accepted")
	}
}

func TestChainDatabase(t *testing.T) {
	db, err := ChainDatabase(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	full := db.Join()
	// Ascending runs of length 4 in [0,10): starts 0..6 → 7 tuples.
	if full.Len() != 7 {
		t.Errorf("chain join has %d tuples, want 7", full.Len())
	}
}

func TestDanglingChainDatabase(t *testing.T) {
	db, err := DanglingChainDatabase(3, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := ChainDatabase(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Join().Equal(clean.Join()) {
		t.Error("dangling tuples changed the join result")
	}
	for i := 0; i < db.Len(); i++ {
		if db.Relation(i).Len() != clean.Relation(i).Len()+5 {
			t.Errorf("relation %d missing dangling tuples", i)
		}
	}
	if db.PairwiseConsistent() {
		t.Error("dangling database should not be pairwise consistent")
	}
}

// TestCycleAdjacentJoinFormula verifies the near-Cartesian adjacent join
// size M·p_i·p_j + 1 against actual evaluation.
func TestCycleAdjacentJoinFormula(t *testing.T) {
	spec := CycleSpec{Relations: 4, M: 3, Payloads: []int64{5, 4, 3, 2}}
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		j := (i + 1) % 4
		got := relation.Join(db.Relation(i), db.Relation(j)).Len()
		want := spec.M*spec.Payloads[i]*spec.Payloads[j] + 1
		if int64(got) != want {
			t.Errorf("|R%d ⋈ R%d| = %d, want %d", i+1, j+1, got, want)
		}
	}
}

func TestTriangleDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	spec := TriangleSpec{Nodes: 30, Edges: 120}
	db, err := spec.TriangleDatabase(rng)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("relations = %d", db.Len())
	}
	for i := 0; i < 3; i++ {
		if db.Relation(i).Len() != 120 {
			t.Errorf("relation %d has %d edges, want 120", i, db.Relation(i).Len())
		}
	}
	h := hypergraph.OfScheme(db)
	if h.Acyclic() {
		t.Error("triangle scheme should be cyclic")
	}
	// Triangle count via the join must match a brute-force count.
	full := db.Join()
	brute := 0
	edges := map[[2]int64]bool{}
	for _, row := range db.Relation(0).Rows() {
		edges[[2]int64{row[0].AsInt(), row[1].AsInt()}] = true
	}
	for e1 := range edges {
		for e2 := range edges {
			if e1[1] != e2[0] {
				continue
			}
			if edges[[2]int64{e2[1], e1[0]}] {
				brute++
			}
		}
	}
	if full.Len() != brute {
		t.Errorf("join counts %d triangles, brute force %d", full.Len(), brute)
	}
	// Bad specs rejected.
	if _, err := (TriangleSpec{Nodes: 1, Edges: 1}).TriangleDatabase(rng); err == nil {
		t.Error("1-node spec accepted")
	}
	if _, err := (TriangleSpec{Nodes: 3, Edges: 100}).TriangleDatabase(rng); err == nil {
		t.Error("impossible edge count accepted")
	}
}
