package workload

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
)

func TestZipfDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	h, err := ChainScheme(3)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ZipfDatabase(rng, h, 300, 50, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("relations = %d", db.Len())
	}
	// Skew check: the most frequent value of the first column should carry
	// far more than a uniform share.
	counts := map[int64]int{}
	rel := db.Relation(0)
	for _, row := range rel.Rows() {
		counts[row[0].AsInt()]++
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	uniformShare := rel.Len() / 50
	if best < 3*uniformShare {
		t.Errorf("max value frequency %d not skewed (uniform share %d)", best, uniformShare)
	}
	// Bad parameters rejected.
	if _, err := ZipfDatabase(rng, h, 10, 0, 1.5); err == nil {
		t.Error("domain 0 accepted")
	}
	if _, err := ZipfDatabase(rng, h, 10, 5, 1.0); err == nil {
		t.Error("exponent 1.0 accepted")
	}
}

func TestStarJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	db, err := StarJoin(rng, StarJoinSpec{
		Dimensions: 3,
		FactRows:   200,
		DimRows:    []int{20, 10, 5},
		MissRate:   0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 4 {
		t.Fatalf("relations = %d, want fact + 3 dims", db.Len())
	}
	// The scheme is a star: acyclic and connected.
	h := hypergraph.OfScheme(db)
	if !h.Acyclic() {
		t.Error("star join scheme should be acyclic")
	}
	if !h.Connected(h.Full()) {
		t.Error("star join scheme should be connected")
	}
	// Dangling keys exist: the join is smaller than the fact table.
	full := db.Join()
	if full.Len() >= db.Relation(0).Len() {
		t.Errorf("join %d should be smaller than the fact table %d (dangling keys)",
			full.Len(), db.Relation(0).Len())
	}
	if full.Len() == 0 {
		t.Error("join empty — miss rate too aggressive?")
	}
	// Parameter validation.
	if _, err := StarJoin(rng, StarJoinSpec{Dimensions: 2, FactRows: 1, DimRows: []int{1}}); err == nil {
		t.Error("mismatched DimRows accepted")
	}
	if _, err := StarJoin(rng, StarJoinSpec{Dimensions: 1, FactRows: 1, DimRows: []int{1}, MissRate: 1.0}); err == nil {
		t.Error("miss rate 1.0 accepted")
	}
}
