package workload

import (
	"fmt"
	"math"

	"repro/internal/hypergraph"
)

// sizerInfinite mirrors the optimizer package's saturation sentinel so the
// analytic sizer and the measuring catalog agree on overflow behaviour
// (workload cannot import optimizer: the optimizer's tests import workload).
const sizerInfinite = math.MaxInt64 / 4

// CycleSizer answers |⋈D[S]| queries for the Example-3 cycle family in
// closed form, with no data materialized. It implements the optimizer
// package's Sizer interface, so the exact dynamic programs can optimize
// paper-scale instances (q = 10^k for any k) that could never be evaluated.
//
// The formulas: a connected subset of a cycle scheme is an arc of
// consecutive relations i..j. Within an arc, the shared link attributes
// chain every relation to the same Z_M orbit, so the arc's join has
// M·Π payloads tuples from Z_M plus the single Bottom tuple — unless the arc
// is the whole cycle, where the Z_M part vanishes (the twisted link admits
// no solution) leaving exactly the Bottom tuple. A disconnected subset's
// size is the product of its arcs' sizes.
type CycleSizer struct {
	spec CycleSpec
	h    *hypergraph.Hypergraph
}

// AnalyticSizer returns the closed-form sizer for the family.
func (s CycleSpec) AnalyticSizer() (*CycleSizer, error) {
	h, err := s.CycleScheme()
	if err != nil {
		return nil, err
	}
	return &CycleSizer{spec: s, h: h}, nil
}

// Hypergraph returns the family's scheme.
func (cs *CycleSizer) Hypergraph() *hypergraph.Hypergraph { return cs.h }

// Size returns |⋈D[S]| exactly (saturating at the optimizer's Infinite).
func (cs *CycleSizer) Size(mask hypergraph.Mask) (int64, error) {
	if mask == 0 {
		return 0, fmt.Errorf("workload: size of the empty subset")
	}
	if mask == cs.h.Full() {
		return 1, nil // only the Bottom tuple closes the cycle
	}
	total := int64(1)
	for _, comp := range cs.h.Components(mask) {
		total = sizerMul(total, cs.arcSize(comp))
	}
	return total, nil
}

// arcSize is M·Π payloads + 1 for a (proper) arc of the cycle.
func (cs *CycleSizer) arcSize(comp hypergraph.Mask) int64 {
	size := cs.spec.M
	for _, i := range comp.Indexes() {
		size = sizerMul(size, cs.spec.Payloads[i])
	}
	if size >= sizerInfinite {
		return sizerInfinite
	}
	return size + 1
}

func sizerMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a >= sizerInfinite || b >= sizerInfinite || a > sizerInfinite/b {
		return sizerInfinite
	}
	return a * b
}
