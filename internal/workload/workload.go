// Package workload generates the schemes and databases used by the
// experiments: the paper's Example-3 cyclic family, random connected schemes
// and databases, and the classic chain/star/clique scheme shapes.
package workload

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/relation"
)

// Bottom is the distinguished link value that closes the cycle in the
// Example-3 family; it never collides with the Z_M link values 0..M-1.
const Bottom = int64(-1)

// CycleSpec parameterizes the Example-3 family: a cycle of Relations
// ternary relation schemes R_i(link_i, payload_i, link_{i+1}). Link
// attributes carry values in Z_M; relations 0..n-2 relate equal link values
// (next = link) and the last relation shifts by one (next = link+1 mod M),
// so the cycle can never close through Z_M — only through one distinguished
// Bottom tuple present in every relation. Payload attributes replicate each
// link combination Payloads[i] times, setting relation i's size to
// M·Payloads[i] + 1.
//
// Properties (verified by the package tests):
//
//   - the database is pairwise consistent, so a full reducer removes
//     nothing, yet ⋈D has exactly one tuple (the Bottom tuple): it is not
//     globally consistent;
//   - every adjacent join is near-Cartesian: |R_i ⋈ R_{i+1}| =
//     M·Payloads[i]·Payloads[i+1] + 1 ≈ |R_i|·|R_{i+1}|/M;
//   - non-adjacent relations share no attributes, so their joins are exact
//     Cartesian products.
//
// With the Example3 size profile (sizes ≈ q³, q², q, q² around the 4-cycle
// — the largest and smallest relations opposite each other) the optimal
// expression is the paper's non-CPF (R1 ⋈ R3) ⋈ (R2 ⋈ R4): its Cartesian
// products cost |R1|·|R3| + |R2|·|R4| ≈ 2q⁴, while every CPF (and every
// linear) expression must pay an adjacent near-Cartesian join or a triple
// join of order q⁵ — an unbounded gap as q grows. This mirrors Example 3's
// 10^{4k+1} vs 2·10^{5k} with q = 10^k.
type CycleSpec struct {
	// Relations is the cycle length (number of relations, ≥ 3, ≤ 13).
	Relations int
	// M is the link-domain size (≥ 2).
	M int64
	// Payloads gives each relation's payload count (length Relations, all
	// ≥ 1); relation i has M·Payloads[i] + 1 tuples.
	Payloads []int64
}

// UniformCycle is a CycleSpec with the same payload count p for every
// relation.
func UniformCycle(n int, m, p int64) CycleSpec {
	payloads := make([]int64, n)
	for i := range payloads {
		payloads[i] = p
	}
	return CycleSpec{Relations: n, M: m, Payloads: payloads}
}

// Example3 is the paper-shaped instance at scale q (even, ≥ 2): a 4-cycle
// with link domain 2 and relation sizes ≈ q³, q², q, q², so that the
// cross-product plan costs ≈ 2q⁴ while every CPF expression costs Ω(q⁵)/4.
// The paper's k-th instance corresponds to q = 10^k.
func Example3(q int64) (CycleSpec, error) {
	if q < 2 || q%2 != 0 {
		return CycleSpec{}, fmt.Errorf("workload: Example3 scale must be even and ≥ 2, got %d", q)
	}
	return CycleSpec{
		Relations: 4,
		M:         2,
		Payloads:  []int64{q * q * q / 2, q * q / 2, q / 2, q * q / 2},
	}, nil
}

// Validate checks the spec is usable.
func (s CycleSpec) Validate() error {
	if s.Relations < 3 {
		return fmt.Errorf("workload: cycle needs at least 3 relations, got %d", s.Relations)
	}
	if s.Relations > 13 {
		return fmt.Errorf("workload: cycle of %d relations exceeds the 26-attribute alphabet", s.Relations)
	}
	if s.M < 2 {
		return fmt.Errorf("workload: link domain M must be at least 2, got %d", s.M)
	}
	if len(s.Payloads) != s.Relations {
		return fmt.Errorf("workload: %d payload counts for %d relations", len(s.Payloads), s.Relations)
	}
	for i, p := range s.Payloads {
		if p < 1 {
			return fmt.Errorf("workload: payload count %d of relation %d must be at least 1", p, i)
		}
	}
	return nil
}

// CycleScheme returns the scheme hypergraph of the family: Relations=4
// gives exactly the paper's {ABC, CDE, EFG, GHA}. Relation i has attributes
// (link_i, payload_i, link_{i+1}) drawn from the alphabet A, B, C, …: link
// attributes sit at even offsets, payloads at odd offsets.
func (s CycleSpec) CycleScheme() (*hypergraph.Hypergraph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	names := ""
	for i := 0; i < s.Relations; i++ {
		link := string(rune('A' + 2*i))
		pay := string(rune('A' + 2*i + 1))
		next := string(rune('A' + (2*i+2)%(2*s.Relations)))
		if i > 0 {
			names += " "
		}
		names += link + pay + next
	}
	return hypergraph.ParseScheme(names)
}

// CycleDatabase builds the family's database; see CycleSpec for its
// properties.
func (s CycleSpec) CycleDatabase() (*relation.Database, error) {
	h, err := s.CycleScheme()
	if err != nil {
		return nil, err
	}
	rels := make([]*relation.Relation, s.Relations)
	for i := 0; i < s.Relations; i++ {
		schema := relation.MustSchema(relationColumns(h, i)...)
		rel := relation.New(schema)
		shift := int64(0)
		if i == s.Relations-1 {
			shift = 1 // the one twisted link that keeps the cycle open
		}
		for link := int64(0); link < s.M; link++ {
			next := (link + shift) % s.M
			for pay := int64(0); pay < s.Payloads[i]; pay++ {
				rel.MustInsert(relation.Ints(link, pay, next))
			}
		}
		rel.MustInsert(relation.Ints(Bottom, 0, Bottom))
		rels[i] = rel
	}
	return relation.NewDatabase(rels...)
}

// relationColumns returns relation i's columns in (link, payload, next)
// order, matching the declaration order in CycleScheme.
func relationColumns(h *hypergraph.Hypergraph, i int) []string {
	name := h.DisplayName(i)
	cols := make([]string, 0, len(name))
	for _, r := range name {
		cols = append(cols, string(r))
	}
	return cols
}

// Sizes returns each relation's cardinality, M·Payloads[i] + 1.
func (s CycleSpec) Sizes() []int64 {
	out := make([]int64, s.Relations)
	for i, p := range s.Payloads {
		out[i] = s.M*p + 1
	}
	return out
}

// NonCPFCycleExpression returns the paper's cheap non-CPF expression shape
// for the cycle family. For the 4-cycle it is exactly Example 3's optimal
// (R1 ⋈ R3) ⋈ (R2 ⋈ R4): the opposite pairs share no attributes, so both
// inner joins are Cartesian products, and the outer join collapses to the
// single closing tuple. For longer cycles it cross-products the
// even-indexed relations first, then joins the odd-indexed ones in one at a
// time.
func (s CycleSpec) NonCPFCycleExpression() (*jointree.Tree, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Relations == 4 {
		return jointree.NewJoin(
			jointree.NewJoin(jointree.NewLeaf(0), jointree.NewLeaf(2)),
			jointree.NewJoin(jointree.NewLeaf(1), jointree.NewLeaf(3)),
		), nil
	}
	var t *jointree.Tree
	for i := 0; i < s.Relations; i += 2 {
		if t == nil {
			t = jointree.NewLeaf(i)
		} else {
			t = jointree.NewJoin(t, jointree.NewLeaf(i))
		}
	}
	for i := 1; i < s.Relations; i += 2 {
		t = jointree.NewJoin(t, jointree.NewLeaf(i))
	}
	return t, nil
}
