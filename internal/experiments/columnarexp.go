package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/workload"
)

// ColumnarBenchRow is one workload's tuple-map-vs-columnar measurement in
// EX10.
type ColumnarBenchRow struct {
	Family        string  `json:"family"`
	Config        string  `json:"config"`
	Inputs        int64   `json:"inputs"`
	ResultTuples  int     `json:"result_tuples"`
	Cost          int64   `json:"cost"`
	Intermediates int64   `json:"intermediates"`
	TupleWallMS   float64 `json:"tuple_wall_ms"`
	ColumnWallMS  float64 `json:"columnar_wall_ms"`
	Speedup       float64 `json:"speedup"`
	// Largest marks the family's biggest size — the rows the strictly-faster
	// acceptance bar applies to.
	Largest bool `json:"largest"`
}

// ColumnarBenchResult is the machine-readable outcome of EX10, written by
// joinbench as BENCH_columnar.json.
type ColumnarBenchResult struct {
	Experiment string             `json:"experiment"`
	Trials     int                `json:"trials"`
	Rows       []ColumnarBenchRow `json:"rows"`
}

// ColumnarComparison (experiment EX10) pits the columnar batch kernels
// against the tuple-map operators they shadow: StrategyColumnar and
// StrategyExpression evaluate the *same* optimized CPF tree, so their §2.3
// costs are provably equal (the experiment hard-fails if not) and the only
// degree of freedom is wall time — per-tuple map insertion and Value
// hashing versus dictionary codes, packed uint64 keys, and batch appends.
// The acceptance bar: on the largest size of each family (where encoding
// amortizes), the columnar route must be strictly faster, best-of-trials
// against best-of-trials. Smaller sizes are reported but informative only.
func ColumnarComparison(seed int64, trials int) (*Table, *ColumnarBenchResult, error) {
	if trials <= 0 {
		trials = 3
	}
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:    "EX10",
		Title: "Extension — columnar batch kernels vs tuple-map operators on the same plans",
		Columns: []string{
			"workload", "inputs", "result", "interm.",
			"tuple-map wall", "columnar wall", "speedup",
		},
	}
	bench := &ColumnarBenchResult{Experiment: "EX10", Trials: trials}

	type workloadCase struct {
		family  string
		config  string
		db      *relation.Database
		largest bool
	}
	var cases []workloadCase
	for _, cfg := range []struct {
		nodes, edges int
		largest      bool
	}{
		{40, 120, false},
		{40, 360, false},
		{60, 900, false},
		{120, 3000, true},
	} {
		db, err := workload.TriangleSpec{Nodes: cfg.nodes, Edges: cfg.edges}.TriangleDatabase(rng)
		if err != nil {
			return nil, nil, err
		}
		cases = append(cases, workloadCase{
			family:  "triangle",
			config:  fmt.Sprintf("G(%d nodes, %d edges)", cfg.nodes, cfg.edges),
			db:      db,
			largest: cfg.largest,
		})
	}
	for _, q := range []struct {
		q       int64
		largest bool
	}{{6, false}, {10, false}, {14, true}} {
		spec, err := workload.Example3(q.q)
		if err != nil {
			return nil, nil, err
		}
		db, err := spec.CycleDatabase()
		if err != nil {
			return nil, nil, err
		}
		cases = append(cases, workloadCase{
			family:  "cycle4",
			config:  fmt.Sprintf("Example3(q=%d)", q.q),
			db:      db,
			largest: q.largest,
		})
	}

	for _, c := range cases {
		want := c.db.Join()
		inputs := int64(c.db.TotalTuples())
		run := func(s engine.Strategy) (*engine.Report, time.Duration, error) {
			var best time.Duration
			var rep *engine.Report
			for i := 0; i < trials; i++ {
				start := time.Now()
				r, err := engine.Join(c.db, engine.Options{Strategy: s})
				wall := time.Since(start)
				if err != nil {
					return nil, 0, fmt.Errorf("EX10 %s %s: %w", c.config, s, err)
				}
				if !r.Result.Equal(want) {
					return nil, 0, fmt.Errorf("EX10 %s: strategy %s computed a wrong result", c.config, s)
				}
				if rep == nil || wall < best {
					best, rep = wall, r
				}
			}
			return rep, best, nil
		}
		tup, tupWall, err := run(engine.StrategyExpression)
		if err != nil {
			return nil, nil, err
		}
		col, colWall, err := run(engine.StrategyColumnar)
		if err != nil {
			return nil, nil, err
		}
		if col.Cost != tup.Cost {
			return nil, nil, fmt.Errorf("EX10 %s: columnar cost %d != tuple-map cost %d on the same tree",
				c.config, col.Cost, tup.Cost)
		}
		if c.largest && colWall >= tupWall {
			return nil, nil, fmt.Errorf("EX10 %s: columnar wall %s not strictly below tuple-map %s on the family's largest size",
				c.config, colWall, tupWall)
		}
		out := int64(want.Len())
		inter := tup.Cost - inputs - out
		speedup := float64(tupWall) / float64(colWall)
		t.AddRow(c.config, inputs, want.Len(), inter,
			tupWall.Round(10*time.Microsecond), colWall.Round(10*time.Microsecond),
			fmt.Sprintf("%.2fx", speedup))
		bench.Rows = append(bench.Rows, ColumnarBenchRow{
			Family:        c.family,
			Config:        c.config,
			Inputs:        inputs,
			ResultTuples:  want.Len(),
			Cost:          tup.Cost,
			Intermediates: inter,
			TupleWallMS:   float64(tupWall) / float64(time.Millisecond),
			ColumnWallMS:  float64(colWall) / float64(time.Millisecond),
			Speedup:       speedup,
			Largest:       c.largest,
		})
	}
	t.AddNote("both routes evaluate the identical optimized CPF tree; §2.3 costs are asserted equal, so the delta is pure execution machinery")
	t.AddNote("columnar: dictionary-encoded blocks, sorted-merge code remapping, packed uint64 join keys, batch appends sharing dictionaries by reference")
	t.AddNote("acceptance: strictly faster on each family's largest size (best-of-trials); small sizes pay the encode without amortizing it")
	return t, bench, nil
}
