package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/relation"
	"repro/internal/workload"
)

// hybridNoWorseFactor is EX12's acceptance bound: the hybrid strategy's
// best-of-trials wall time must stay at or below this factor of the best
// single static rung's. The probes put hybrid strictly ahead (0.6–0.9× the
// best rung); the slack absorbs CI timer noise without letting a real
// regression through.
const hybridNoWorseFactor = 1.10

// hybridNoWorseSlack is an absolute grace on top of the ratio bound. On the
// sub-millisecond workloads a single scheduler preemption is worth more than
// the whole measurement; the slack keeps the ratio meaningful where wall
// times are large and stops it from amplifying noise where they are tiny.
const hybridNoWorseSlack = time.Millisecond

// HybridBenchRow is one workload's hybrid-vs-static-ladder measurement in
// EX12.
type HybridBenchRow struct {
	Workload     string  `json:"workload"`
	Route        string  `json:"route"`
	Inputs       int64   `json:"inputs"`
	ResultTuples int     `json:"result_tuples"`
	HybridCost   int64   `json:"hybrid_cost"`
	HybridWallMS float64 `json:"hybrid_wall_ms"`
	// BestStatic names the fastest single static rung and its measurements.
	BestStatic       string  `json:"best_static"`
	BestStaticCost   int64   `json:"best_static_cost"`
	BestStaticWallMS float64 `json:"best_static_wall_ms"`
	Speedup          float64 `json:"speedup"`
	// QError is the chooser's estimate-vs-actual §2.3 cost ratio (≥ 1).
	QError float64 `json:"qerror"`
}

// HybridBenchResult is the machine-readable outcome of EX12, written by
// joinbench as BENCH_hybrid.json.
type HybridBenchResult struct {
	Experiment    string           `json:"experiment"`
	Trials        int              `json:"trials"`
	NoWorseFactor float64          `json:"no_worse_factor"`
	Rows          []HybridBenchRow `json:"rows"`
}

// pendantRelation builds a large, selective degree-1 pendant: the first
// attribute uniform over dom1, the second unique per row.
func pendantRelation(rng *rand.Rand, attrs []string, size, dom1 int) *relation.Relation {
	r := relation.New(relation.MustSchema(attrs...))
	for i := 0; i < size; i++ {
		r.MustInsert(relation.Ints(int64(rng.Intn(dom1)), int64(i)))
	}
	return r
}

// mixedRouteWorkload is the shape the mixed route exists for: a Zipf-skewed
// triangle core (binary joins pay its heavy-hitter intermediates) with two
// large selective pendant chains hanging off it (a full triejoin pays its
// trie handicap on them for nothing).
func mixedRouteWorkload(pendant int) (*relation.Database, error) {
	rng := rand.New(rand.NewSource(3))
	h, err := workload.CliqueScheme(3)
	if err != nil {
		return nil, err
	}
	core, err := workload.ZipfDatabase(rng, h, 200, 50, 1.3)
	if err != nil {
		return nil, err
	}
	cd := pendantRelation(rng, []string{"x2", "x3"}, pendant, 50)
	de := pendantRelation(rng, []string{"x3", "x4"}, pendant, pendant)
	return relation.NewDatabase(core.Relation(0), core.Relation(1), core.Relation(2), cd, de)
}

// HybridComparison (experiment EX12) races the statistics-driven hybrid
// strategy against every static rung of the cyclic degradation ladder on
// skewed workloads — the instances where the static ladder's one-size
// ordering loses. Acceptance, hard-failed on violation:
//
//   - on the skewed triangle the chooser must leave the binary route (wcoj
//     or mixed) — the sketch histograms exist to catch exactly this skew;
//   - on the core+pendants workload it must pick the mixed route: wcoj for
//     the cyclic core, binary joins for the pendant chains;
//   - the hybrid report's governor charge must equal a rerun of its own
//     selected plan, tuple for tuple (it charges identically to whichever
//     plan it picks — no hidden discount);
//   - best-of-trials wall time must be no worse than hybridNoWorseFactor ×
//     the best single static rung on every workload.
func HybridComparison(seed int64, trials int, quick bool) (*Table, *HybridBenchResult, error) {
	if trials <= 0 {
		trials = 3
	}
	pendant := 20000
	if quick {
		pendant = 6000
	}
	t := &Table{
		ID:    "EX12",
		Title: "Extension — statistics-driven hybrid strategy vs the static ladder on skewed workloads",
		Columns: []string{
			"workload", "route", "inputs", "result",
			"hybrid wall", "best static", "static wall", "speedup", "q-error",
		},
	}
	bench := &HybridBenchResult{Experiment: "EX12", Trials: trials, NoWorseFactor: hybridNoWorseFactor}

	rng := rand.New(rand.NewSource(seed))
	triH, err := workload.CliqueScheme(3)
	if err != nil {
		return nil, nil, err
	}
	skewedTri, err := workload.ZipfDatabase(rng, triH, 400, 40, 1.2)
	if err != nil {
		return nil, nil, err
	}
	mixed, err := mixedRouteWorkload(pendant)
	if err != nil {
		return nil, nil, err
	}
	cases := []struct {
		name       string
		db         *relation.Database
		wantRoutes []string
	}{
		{"Zipf triangle (400/40, s=1.2)", skewedTri, []string{"wcoj", "mixed"}},
		{fmt.Sprintf("Zipf triangle core + 2×%d pendant chain", pendant), mixed, []string{"mixed"}},
	}

	statics := []engine.Strategy{
		engine.StrategyColumnar, engine.StrategyReduceThenJoin,
		engine.StrategyWCOJ, engine.StrategyProgram,
	}
	for _, c := range cases {
		want := c.db.Join()
		inputs := int64(c.db.TotalTuples())

		plan, err := engine.PlanFor(c.db, engine.Options{Strategy: engine.StrategyHybrid})
		if err != nil {
			return nil, nil, err
		}
		route := plan.Hybrid.Route
		okRoute := false
		for _, r := range c.wantRoutes {
			okRoute = okRoute || route == r
		}
		if !okRoute {
			return nil, nil, fmt.Errorf("EX12 %s: hybrid routed to %q (est %d), want one of %v",
				c.name, route, plan.Hybrid.EstCost, c.wantRoutes)
		}

		lim := govern.Limits{MaxTuples: 1 << 40}
		// One untimed warm-up per measured plan: the first execution pays
		// allocator and cache warm-up that would otherwise bias whichever
		// contender runs first.
		if _, err := engine.ExecutePlan(c.db, plan, engine.Options{Limits: lim}); err != nil {
			return nil, nil, err
		}
		var hybridWall time.Duration
		var hrep *engine.Report
		for i := 0; i < trials; i++ {
			start := time.Now()
			r, err := engine.ExecutePlan(c.db, plan, engine.Options{Limits: lim})
			wall := time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("EX12 %s hybrid: %w", c.name, err)
			}
			if !r.Result.Equal(want) {
				return nil, nil, fmt.Errorf("EX12 %s: hybrid (%s route) computed a wrong result", c.name, route)
			}
			if hrep == nil || wall < hybridWall {
				hybridWall, hrep = wall, r
			}
		}
		// Charge parity: the hybrid machinery is deterministic, so a rerun of
		// the selected plan charges the governor identically.
		rerun, err := engine.ExecutePlan(c.db, plan, engine.Options{Limits: lim})
		if err != nil {
			return nil, nil, err
		}
		if rerun.Cost != hrep.Cost || rerun.Produced != hrep.Produced {
			return nil, nil, fmt.Errorf("EX12 %s: hybrid charges drifted across reruns: cost %d vs %d, produced %d vs %d",
				c.name, hrep.Cost, rerun.Cost, hrep.Produced, rerun.Produced)
		}
		if route == "wcoj" {
			// The selected plan IS the static wcoj plan; charges must match it
			// exactly, not just across hybrid reruns.
			wplan, err := engine.PlanFor(c.db, engine.Options{Strategy: engine.StrategyWCOJ})
			if err != nil {
				return nil, nil, err
			}
			wrep, err := engine.ExecutePlan(c.db, wplan, engine.Options{Limits: lim})
			if err != nil {
				return nil, nil, err
			}
			if wrep.Cost != hrep.Cost || wrep.Produced != hrep.Produced {
				return nil, nil, fmt.Errorf("EX12 %s: hybrid wcoj route charges (cost %d, produced %d) diverge from the static wcoj plan's (%d, %d)",
					c.name, hrep.Cost, hrep.Produced, wrep.Cost, wrep.Produced)
			}
		}

		bestStatic := ""
		var bestWall time.Duration
		var bestCost int64
		for _, s := range statics {
			if _, err := engine.Join(c.db, engine.Options{Strategy: s, Limits: lim}); err != nil {
				return nil, nil, fmt.Errorf("EX12 %s %s: %w", c.name, s, err)
			}
			var sw time.Duration
			var srep *engine.Report
			for i := 0; i < trials; i++ {
				start := time.Now()
				r, err := engine.Join(c.db, engine.Options{Strategy: s, Limits: lim})
				wall := time.Since(start)
				if err != nil {
					return nil, nil, fmt.Errorf("EX12 %s %s: %w", c.name, s, err)
				}
				if !r.Result.Equal(want) {
					return nil, nil, fmt.Errorf("EX12 %s: strategy %s computed a wrong result", c.name, s)
				}
				if srep == nil || wall < sw {
					sw, srep = wall, r
				}
			}
			if bestStatic == "" || sw < bestWall {
				bestStatic, bestWall, bestCost = s.String(), sw, srep.Cost
			}
		}
		if hybridWall > time.Duration(float64(bestWall)*hybridNoWorseFactor)+hybridNoWorseSlack {
			return nil, nil, fmt.Errorf("EX12 %s: hybrid wall %s exceeds %.2f× the best static rung (%s at %s) plus %s slack",
				c.name, hybridWall, hybridNoWorseFactor, bestStatic, bestWall, hybridNoWorseSlack)
		}

		q := float64(plan.Hybrid.EstCost) / float64(hrep.Cost)
		if q < 1 {
			q = 1 / q
		}
		speedup := float64(bestWall) / float64(hybridWall)
		t.AddRow(c.name, route, inputs, want.Len(),
			hybridWall.Round(10*time.Microsecond), bestStatic,
			bestWall.Round(10*time.Microsecond),
			fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%.2f", q))
		bench.Rows = append(bench.Rows, HybridBenchRow{
			Workload:         c.name,
			Route:            route,
			Inputs:           inputs,
			ResultTuples:     want.Len(),
			HybridCost:       hrep.Cost,
			HybridWallMS:     float64(hybridWall) / float64(time.Millisecond),
			BestStatic:       bestStatic,
			BestStaticCost:   bestCost,
			BestStaticWallMS: float64(bestWall) / float64(time.Millisecond),
			Speedup:          speedup,
			QError:           q,
		})
	}
	t.AddNote("routes: the chooser estimates §2.3 costs from per-relation sketches (equi-depth histograms, degree counts) and picks wcoj for the skewed cyclic core, binary joins elsewhere")
	t.AddNote("charge parity asserted: the hybrid report equals a rerun of its selected plan tuple for tuple (and the static wcoj plan exactly, when that is the route)")
	t.AddNote("acceptance: best-of-trials hybrid wall ≤ %.2f× the best single static rung (+%s noise slack) on every workload", hybridNoWorseFactor, hybridNoWorseSlack)
	return t, bench, nil
}

// AdversarialGauntlet (experiment EX13) drives the checked-in
// cartesian-explosion corpus (internal/workload/testdata/adversarial)
// through every strategy under each case's own tuple budget: unfiltered
// products, late filters, star fan-outs, self-joins, unrelated predicates,
// and skewed cycles. Every strategy must finish within the case budget and
// agree with the reference fold, and the hybrid chooser's cost estimate
// must sit within the case's q-error bound — the corpus is the estimator's
// standing acceptance suite.
func AdversarialGauntlet() (*Table, error) {
	cases, err := workload.AdversarialCases()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "EX13",
		Title: "Extension — adversarial estimation gauntlet: cartesian-explosion corpus under per-case budgets",
		Columns: []string{
			"case", "scheme", "inputs", "result", "budget",
			"max charge", "route", "est cost", "q-error", "bound",
		},
	}
	strategies := []engine.Strategy{
		engine.StrategyProgram, engine.StrategyWCOJ,
		engine.StrategyColumnar, engine.StrategyHybrid,
	}
	for _, c := range cases {
		db, err := c.Database()
		if err != nil {
			return nil, err
		}
		want := db.Join()
		var maxCharge, hybridCost int64
		for _, s := range strategies {
			rep, err := engine.Join(db, engine.Options{Strategy: s, Limits: govern.Limits{MaxTuples: c.Budget}})
			if err != nil {
				return nil, fmt.Errorf("EX13 %s: %s under budget %d: %w", c.Name, s, c.Budget, err)
			}
			if !rep.Result.Equal(want) {
				return nil, fmt.Errorf("EX13 %s: %s diverges from the reference fold", c.Name, s)
			}
			if rep.Produced > maxCharge {
				maxCharge = rep.Produced
			}
			if s == engine.StrategyHybrid {
				hybridCost = rep.Cost
			}
		}
		plan, err := engine.PlanFor(db, engine.Options{Strategy: engine.StrategyHybrid})
		if err != nil {
			return nil, err
		}
		q := float64(plan.Hybrid.EstCost) / float64(hybridCost)
		if q < 1 {
			q = 1 / q
		}
		if q > c.QErrorBound {
			return nil, fmt.Errorf("EX13 %s: q-error %.2f exceeds the case bound %.2f (est %d, actual %d)",
				c.Name, q, c.QErrorBound, plan.Hybrid.EstCost, hybridCost)
		}
		t.AddRow(c.Name, c.Scheme, db.TotalTuples(), want.Len(), c.Budget,
			maxCharge, plan.Hybrid.Route, plan.Hybrid.EstCost,
			fmt.Sprintf("%.2f", q), fmt.Sprintf("%.2f", c.QErrorBound))
	}
	t.AddNote("shapes follow the classic cartesian-explosion stress suites: unfiltered joins, filters after the product, star fan-out, self-joins on duplicated data, unrelated predicates, skewed cycles")
	t.AddNote("every strategy must finish inside the case budget (a planner that mishandles the shape fails loudly instead of hanging) and agree tuple-for-tuple")
	t.AddNote("the hybrid chooser's §2.3 estimate must sit within each case's fixed q-error bound — the estimator's standing acceptance bar")
	return t, nil
}
