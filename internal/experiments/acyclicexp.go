package experiments

import (
	"fmt"

	"repro/internal/acyclic"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/relation"
	"repro/internal/workload"
)

// FullReducerExperiment (experiment E7) contrasts the two sides of the
// paper's §1/Example 3 discussion: on an acyclic chain with dangling tuples
// a full reducer removes every dangling tuple, while on a pairwise-
// consistent restriction of the Example-3 cycle it removes nothing — and
// for the cyclic scheme itself no full reducer exists at all.
func FullReducerExperiment() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Full reducer — effective on dangling acyclic data, useless on pairwise-consistent data",
		Columns: []string{"database", "scheme", "tuples before", "tuples after", "removed"},
	}

	dangling, err := workload.DanglingChainDatabase(4, 12, 6)
	if err != nil {
		return nil, err
	}
	reduced, _, err := acyclic.Reduce(dangling)
	if err != nil {
		return nil, err
	}
	t.AddRow("chain + dangling tuples", "x0x1 x1x2 x2x3 x3x4 (acyclic)",
		dangling.TotalTuples(), reduced.TotalTuples(), dangling.TotalTuples()-reduced.TotalTuples())

	spec := workload.UniformCycle(4, 3, 3)
	cycleDB, err := spec.CycleDatabase()
	if err != nil {
		return nil, err
	}
	path, err := cycleDB.Restrict([]int{0, 1, 2})
	if err != nil {
		return nil, err
	}
	pathReduced, _, err := acyclic.Reduce(path)
	if err != nil {
		return nil, err
	}
	t.AddRow("Example-3 family, one relation dropped", "ABC CDE EFG (acyclic, pairwise consistent)",
		path.TotalTuples(), pathReduced.TotalTuples(), path.TotalTuples()-pathReduced.TotalTuples())

	if _, _, err := acyclic.Reduce(cycleDB); err == nil {
		return nil, fmt.Errorf("experiments: full reducer accepted the cyclic scheme")
	}
	t.AddNote("the full Example-3 scheme ABC CDE EFG GHA is cyclic: no full reducer exists (GYO fails), as the paper's §1 assumes")
	t.AddNote("pairwise-consistent data defeats semijoin reduction even though ⋈D has a single tuple — the paper's motivation for programs")
	return t, nil
}

// YannakakisExperiment (experiment E8) verifies the classical acyclic
// pipeline: after full reduction the monotone join expression's largest
// intermediate never exceeds the final join, and Yannakakis computes a
// projection with cost polynomial in input + output.
func YannakakisExperiment() (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Acyclic pipeline — monotone joins and Yannakakis after a full reducer",
		Columns: []string{"scheme", "inputs", "output", "max intermediate", "pipeline cost"},
	}
	for _, n := range []int{3, 5, 7} {
		db, err := workload.DanglingChainDatabase(n, 14, 6)
		if err != nil {
			return nil, err
		}
		out, cost, err := acyclic.Join(db)
		if err != nil {
			return nil, err
		}
		reduced, _, err := acyclic.Reduce(db)
		if err != nil {
			return nil, err
		}
		maxInter, err := maxMonotoneIntermediate(reduced)
		if err != nil {
			return nil, err
		}
		if !out.Equal(db.Join()) {
			return nil, fmt.Errorf("experiments: acyclic pipeline wrong on %d-chain", n)
		}
		t.AddRow(fmt.Sprintf("%d-chain + dangling", n), db.TotalTuples(), out.Len(), maxInter, cost)
		if maxInter > out.Len() && out.Len() > 0 {
			return nil, fmt.Errorf("experiments: monotone intermediate %d exceeds output %d", maxInter, out.Len())
		}
	}
	// Yannakakis with a small projection.
	db, err := workload.DanglingChainDatabase(4, 16, 8)
	if err != nil {
		return nil, err
	}
	proj := relation.NewAttrSet("x0", "x4")
	got, cost, err := acyclic.Yannakakis(db, proj)
	if err != nil {
		return nil, err
	}
	want := relation.MustProject(db.Join(), proj)
	if !got.Equal(want) {
		return nil, fmt.Errorf("experiments: Yannakakis wrong")
	}
	t.AddRow("4-chain, π_{x0,x4} (Yannakakis)", db.TotalTuples(), got.Len(), "—", cost)
	t.AddNote("after full reduction no monotone intermediate exceeds the final join — the acyclic guarantee the paper generalizes from")
	return t, nil
}

// maxMonotoneIntermediate evaluates the monotone join expression on the
// reduced database and returns the largest intermediate (internal-node)
// size.
func maxMonotoneIntermediate(db *relation.Database) (int, error) {
	h := hypergraph.OfScheme(db)
	jt, ok := h.GYO()
	if !ok {
		return 0, fmt.Errorf("experiments: scheme unexpectedly cyclic")
	}
	tree := acyclic.MonotoneTree(jt)
	maxSize := 0
	var walk func(n *jointree.Tree) *relation.Relation
	walk = func(n *jointree.Tree) *relation.Relation {
		if n.IsLeaf() {
			return db.Relation(n.Leaf)
		}
		out := relation.Join(walk(n.Left), walk(n.Right))
		if out.Len() > maxSize {
			maxSize = out.Len()
		}
		return out
	}
	walk(tree)
	return maxSize, nil
}
