// Package experiments implements the reproduction harness: one function per
// experiment in DESIGN.md's index (E1–E10), each returning a Table that
// cmd/joinbench prints and EXPERIMENTS.md records. The benchmarks in the
// repository root drive the same functions.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a title, column headers, rows of
// cells, and free-form notes (the paper-vs-measured commentary).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = displayWidth(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && displayWidth(cell) > widths[i] {
				widths[i] = displayWidth(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - displayWidth(cell)
			}
			parts[i] = cell + strings.Repeat(" ", pad)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// RenderCSV writes the table as RFC-4180-style CSV (header row first, one
// line per row; cells containing commas, quotes, or newlines are quoted) —
// the plotting-friendly twin of Render. Notes are omitted.
func (t *Table) RenderCSV(w io.Writer) {
	writeCSVRow(w, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	fmt.Fprintln(w, strings.Join(parts, ","))
}

// displayWidth approximates the printed width: counts runes, not bytes, so
// ⋈ and π align.
func displayWidth(s string) int { return len([]rune(s)) }

// ratio formats a/b with two decimals, or "—" when b is zero.
func ratio(a, b int64) string {
	if b == 0 {
		return "—"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}
