package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// Example3Costs reproduces Example 3 (experiment E1): for each scale q it
// reports the cost of the optimal (non-CPF) join expression, the cheapest
// CPF expression, and the cheapest linear expression on the paper-shaped
// cycle family, all computed exactly from the family's closed-form sizes.
// For every q in measured, the derived program (Algorithms 1+2 applied to
// the optimal tree) is additionally executed on the actual database and its
// measured cost and the measured optimal cost are cross-checked against the
// closed forms.
//
// The paper's k-th instance is q = 10^k: optimal < 10^{4k+1}, every CPF and
// linear expression > 2·10^{5k}, and the derived program < 2·10^{4k}
// (Example 6). The shape reproduced here: optimal ≈ 2q⁴, CPF and linear ≈
// q⁵/4, program ≈ q⁴/2 — same winners, same growth, gap Θ(q).
func Example3Costs(measured, analyticOnly []int64) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Example 3 — cost of optimal vs cheapest CPF / linear expressions and the derived program",
		Columns: []string{
			"q", "|R1..R4|", "optimal", "optimal CPF?", "cheapest CPF", "cheapest linear",
			"CPF/opt", "program (measured)", "prog bound r(a+5)·opt",
		},
	}
	appendScale := func(q int64, measure bool) error {
		spec, err := workload.Example3(q)
		if err != nil {
			return err
		}
		sizer, err := spec.AnalyticSizer()
		if err != nil {
			return err
		}
		opt, err := optimizer.Optimal(sizer, optimizer.SpaceAll)
		if err != nil {
			return err
		}
		cpf, err := optimizer.Optimal(sizer, optimizer.SpaceCPF)
		if err != nil {
			return err
		}
		lin, err := optimizer.Optimal(sizer, optimizer.SpaceLinear)
		if err != nil {
			return err
		}
		h := sizer.Hypergraph()
		qf := core.QuasiFactor(h.Len(), h.Attrs().Len())
		progCell := "—"
		if measure {
			progCost, optMeasured, err := measureExample3Program(spec, opt)
			if err != nil {
				return err
			}
			if optMeasured != opt.Cost {
				return fmt.Errorf("experiments: measured optimal %d != analytic %d at q=%d", optMeasured, opt.Cost, q)
			}
			progCell = fmt.Sprint(progCost)
		}
		sz := spec.Sizes()
		optCPF := "no"
		if opt.Tree.IsCPF(h) {
			optCPF = "yes"
		}
		t.AddRow(q, fmt.Sprintf("%d/%d/%d/%d", sz[0], sz[1], sz[2], sz[3]),
			opt.Cost, optCPF, cpf.Cost, lin.Cost, ratio(cpf.Cost, opt.Cost),
			progCell, int64(qf)*opt.Cost)
		return nil
	}
	for _, q := range measured {
		if err := appendScale(q, true); err != nil {
			return nil, err
		}
	}
	for _, q := range analyticOnly {
		if err := appendScale(q, false); err != nil {
			return nil, err
		}
	}
	t.AddNote("paper (q = 10^k): optimal < 10^{4k+1}, every CPF/linear expression > 2·10^{5k}, derived program < 2·10^{4k}")
	t.AddNote("reproduced shape: optimal ≈ 2q⁴ (opposite-pair Cartesian products), CPF/linear ≈ q⁵/4, program ≈ q⁴/2; gap grows Θ(q)")
	t.AddNote("constants differ from the paper's by a small factor (its family is ≈2× our payloads); the Θ(q⁴) vs Θ(q⁵) separation is the claim")
	t.AddNote("measured rows execute the derived program on the actual database and cross-check the analytic optimal cost")
	return t, nil
}

// measureExample3Program builds the database at the spec's scale, derives
// the program from the optimal tree via Algorithms 1+2, runs it, and
// returns (program cost, measured optimal-tree cost).
func measureExample3Program(spec workload.CycleSpec, opt optimizer.Plan) (progCost, optCost int64, err error) {
	db, err := spec.CycleDatabase()
	if err != nil {
		return 0, 0, err
	}
	h := hypergraph.OfScheme(db)
	d, err := core.DeriveFromTree(opt.Tree, h, nil)
	if err != nil {
		return 0, 0, err
	}
	res, err := d.Program.Apply(db)
	if err != nil {
		return 0, 0, err
	}
	if res.Output.Len() != 1 {
		return 0, 0, fmt.Errorf("experiments: program computed %d tuples, want 1", res.Output.Len())
	}
	return int64(res.Cost), int64(opt.Tree.Cost(db)), nil
}
