package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/relation"
	"repro/internal/workload"
)

// Theorem1Verification (experiment E4) property-checks Theorem 1: across
// trials random connected schemes, random databases, and random trees are
// drawn; the program derived by Algorithms 1+2 must compute ⋈D every time.
// Random CPF trees not produced by Algorithm 1 are also checked (Theorem 1
// covers them).
func Theorem1Verification(trials int, seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:      "E4",
		Title:   "Theorem 1 — derived programs compute ⋈D (randomized verification)",
		Columns: []string{"source of CPF tree", "trials", "correct", "empty joins seen"},
	}
	viaAlg1, viaAlg1Empty := 0, 0
	for trial := 0; trial < trials; trial++ {
		h, db, err := randomInstance(rng, 2+rng.Intn(5), 3+rng.Intn(4), 1+rng.Intn(12), 3)
		if err != nil {
			return nil, err
		}
		tr := jointree.RandomTree(rng, h.Len())
		d, err := core.DeriveFromTree(tr, h, core.RandomChoice{Rng: rng})
		if err != nil {
			return nil, err
		}
		res, err := d.Program.Apply(db)
		if err != nil {
			return nil, err
		}
		want := db.Join()
		if !res.Output.Equal(want) {
			return nil, fmt.Errorf("experiments: Theorem 1 violated on %s, tree %s", h, tr.String(h))
		}
		viaAlg1++
		if want.IsEmpty() {
			viaAlg1Empty++
		}
	}
	t.AddRow("Algorithm 1 on a random tree", trials, viaAlg1, viaAlg1Empty)

	direct, directEmpty := 0, 0
	done := 0
	for trial := 0; done < trials && trial < trials*10; trial++ {
		h, db, err := randomInstance(rng, 2+rng.Intn(4), 3+rng.Intn(3), 1+rng.Intn(10), 3)
		if err != nil {
			return nil, err
		}
		trees, err := jointree.AllCPFTrees(h)
		if err != nil || len(trees) == 0 {
			continue
		}
		done++
		tr := trees[rng.Intn(len(trees))]
		d, err := core.Derive(tr, h)
		if err != nil {
			return nil, err
		}
		res, err := d.Program.Apply(db)
		if err != nil {
			return nil, err
		}
		want := db.Join()
		if !res.Output.Equal(want) {
			return nil, fmt.Errorf("experiments: Theorem 1 violated on arbitrary CPF tree %s over %s", tr.String(h), h)
		}
		direct++
		if want.IsEmpty() {
			directEmpty++
		}
	}
	t.AddRow("random CPF tree (not via Algorithm 1)", done, direct, directEmpty)
	t.AddNote("Theorem 1 makes no ⋈D ≠ ∅ assumption; empty-join cases are included deliberately")
	return t, nil
}

// Theorem2Bound (experiment E5+E6) measures the Theorem 2 ratio
// cost(P(D)) / cost(T1(D)) and the Claim C statement count against their
// bound r(a+5) across random instances with ⋈D ≠ ∅, grouped by scheme size.
func Theorem2Bound(trialsPerSize int, seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:    "E5/E6",
		Title: "Theorem 2 & Claim C — cost(P)/cost(T1) and statement count vs the r(a+5) bound",
		Columns: []string{
			"relations", "trials", "max cost ratio", "mean cost ratio", "bound r(a+5) (min..max)",
			"max statements", "violations",
		},
	}
	for _, r := range []int{3, 4, 5, 6} {
		var ratios []float64
		maxStmts := 0
		minBound, maxBound := 1<<30, 0
		violations := 0
		done := 0
		for attempt := 0; done < trialsPerSize && attempt < trialsPerSize*20; attempt++ {
			h, db, err := randomInstance(rng, r, 3+rng.Intn(4), 2+rng.Intn(10), 2)
			if err != nil {
				return nil, err
			}
			if db.Join().IsEmpty() {
				continue // Theorem 2 assumes ⋈D ≠ ∅
			}
			done++
			tr := jointree.RandomTree(rng, r)
			t1Cost := tr.Cost(db)
			d, err := core.DeriveFromTree(tr, h, core.RandomChoice{Rng: rng})
			if err != nil {
				return nil, err
			}
			res, err := d.Program.Apply(db)
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, float64(res.Cost)/float64(t1Cost))
			if res.Cost >= d.QuasiFactor*t1Cost {
				violations++
			}
			if d.Program.Len() > maxStmts {
				maxStmts = d.Program.Len()
			}
			if d.Program.Len() >= d.QuasiFactor {
				violations++
			}
			if d.QuasiFactor < minBound {
				minBound = d.QuasiFactor
			}
			if d.QuasiFactor > maxBound {
				maxBound = d.QuasiFactor
			}
		}
		maxR, meanR := 0.0, 0.0
		for _, x := range ratios {
			if x > maxR {
				maxR = x
			}
			meanR += x
		}
		if len(ratios) > 0 {
			meanR /= float64(len(ratios))
		}
		t.AddRow(r, done, fmt.Sprintf("%.2f", maxR), fmt.Sprintf("%.2f", meanR),
			fmt.Sprintf("%d..%d", minBound, maxBound), maxStmts, violations)
	}
	t.AddNote("Theorem 2: cost(P(D)) < r(a+5)·cost(T1(D)); Claim C: statements < r(a+5); violations must be 0")
	t.AddNote("observed ratios stay far below the bound — r(a+5) is loose in practice")
	return t, nil
}

// randomInstance draws a random connected scheme and database.
func randomInstance(rng *rand.Rand, relations, attrs, size, domain int) (*hypergraph.Hypergraph, *relation.Database, error) {
	h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
		Relations: relations, Attrs: attrs, MaxArity: 3, Connected: true,
	})
	if err != nil {
		return nil, nil, err
	}
	db, err := workload.RandomDatabase(rng, h, size, domain)
	if err != nil {
		return nil, nil, err
	}
	return h, db, nil
}
