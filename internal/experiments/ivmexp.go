package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ivm"
	"repro/internal/relation"
	"repro/internal/workload"
)

// IVMBenchRow is one delta batch's delta-apply-vs-full-recompute
// measurement in EX9.
type IVMBenchRow struct {
	Config        string  `json:"config"`
	Step          int     `json:"step"`
	BaseTuples    int64   `json:"base_tuples"`
	DeltaTuples   int64   `json:"delta_tuples"`
	ResultTuples  int     `json:"result_tuples"`
	DeltaWallMS   float64 `json:"delta_wall_ms"`
	RebuildWallMS float64 `json:"rebuild_wall_ms"`
	Speedup       float64 `json:"speedup"`
}

// IVMBenchResult is the machine-readable outcome of EX9, written by
// joinbench as BENCH_ivm.json.
type IVMBenchResult struct {
	Experiment string        `json:"experiment"`
	Trials     int           `json:"trials"`
	Rows       []IVMBenchRow `json:"rows"`
}

// IVMComparison (experiment EX9) measures what incremental view maintenance
// buys over recomputation on a growing triangle workload: a view over
// R(A,B) ⋈ S(B,C) ⋈ T(C,A) is maintained while triangles arrive a few edges
// at a time. For each delta batch the experiment times (a) propagating the
// delta through the view's compiled delta program and (b) rebuilding the
// materialized result from the post-batch catalog with the same machinery
// (best of trials, since rebuild is repeatable while a delta application is
// consumed by the first run). Both routes must agree exactly with a
// from-scratch join, and the delta path must be strictly faster on every
// small-delta batch — that is the subsystem's acceptance bar: maintenance
// work scales with |Δ|, recomputation with |instance|.
func IVMComparison(seed int64, trials int) (*Table, *IVMBenchResult, error) {
	if trials <= 0 {
		trials = 3
	}
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:    "EX9",
		Title: "Extension — incremental maintenance vs full recompute on a growing triangle workload",
		Columns: []string{
			"workload", "step", "base", "Δ tuples", "result",
			"Δ-apply wall", "rebuild wall", "speedup",
		},
	}
	bench := &IVMBenchResult{Experiment: "EX9", Trials: trials}

	const steps = 4
	for _, cfg := range []struct{ nodes, edges int }{
		{60, 900},
		{100, 2400},
	} {
		db, err := workload.TriangleSpec{Nodes: cfg.nodes, Edges: cfg.edges}.TriangleDatabase(rng)
		if err != nil {
			return nil, nil, err
		}
		config := fmt.Sprintf("G(%d nodes, %d edges)", cfg.nodes, cfg.edges)
		view, err := ivm.Compile(db)
		if err != nil {
			return nil, nil, fmt.Errorf("EX9 %s: %w", config, err)
		}
		if err := view.Rebuild(db); err != nil {
			return nil, nil, fmt.Errorf("EX9 %s: %w", config, err)
		}
		// scratch is an identical view used only to time full rebuilds.
		scratch, err := ivm.Compile(db)
		if err != nil {
			return nil, nil, fmt.Errorf("EX9 %s: %w", config, err)
		}

		next := int64(cfg.nodes) // fresh vertex ids so every step adds triangles
		for step := 1; step <= steps; step++ {
			// One new triangle (a,b,c) plus one chord back into the old
			// graph: a handful of edge inserts per relation.
			a, b, c := next, next+1, next+2
			next += 3
			old := int64(rng.Intn(cfg.nodes))
			changes := []ivm.Change{
				{Relation: 0, Inserts: []relation.Tuple{relation.Ints(a, b), relation.Ints(old, a)}},
				{Relation: 1, Inserts: []relation.Tuple{relation.Ints(b, c)}},
				{Relation: 2, Inserts: []relation.Tuple{relation.Ints(c, a)}},
			}
			base := int64(db.TotalTuples())
			var deltaTuples int64
			for _, ch := range changes {
				for _, tu := range ch.Inserts {
					if err := db.Relation(ch.Relation).Insert(tu); err != nil {
						return nil, nil, fmt.Errorf("EX9 %s: %w", config, err)
					}
					deltaTuples++
				}
			}

			start := time.Now()
			if _, err := view.Apply(changes, nil); err != nil {
				return nil, nil, fmt.Errorf("EX9 %s step %d: %w", config, step, err)
			}
			deltaWall := time.Since(start)

			var rebuildWall time.Duration
			for i := 0; i < trials; i++ {
				start = time.Now()
				if err := scratch.Rebuild(db); err != nil {
					return nil, nil, fmt.Errorf("EX9 %s step %d: %w", config, step, err)
				}
				if wall := time.Since(start); i == 0 || wall < rebuildWall {
					rebuildWall = wall
				}
			}

			want := db.Join()
			if !view.Result().Equal(want) {
				return nil, nil, fmt.Errorf("EX9 %s step %d: delta-maintained view diverged from recompute", config, step)
			}
			if !scratch.Result().Equal(want) {
				return nil, nil, fmt.Errorf("EX9 %s step %d: rebuilt view diverged from recompute", config, step)
			}
			if deltaWall >= rebuildWall {
				return nil, nil, fmt.Errorf("EX9 %s step %d: delta apply (%s) not strictly faster than rebuild (%s) on a %d-tuple delta",
					config, step, deltaWall, rebuildWall, deltaTuples)
			}
			speedup := float64(rebuildWall) / float64(deltaWall)
			t.AddRow(config, step, base, deltaTuples, want.Len(),
				deltaWall.Round(time.Microsecond), rebuildWall.Round(10*time.Microsecond),
				fmt.Sprintf("%.1f×", speedup))
			bench.Rows = append(bench.Rows, IVMBenchRow{
				Config:        config,
				Step:          step,
				BaseTuples:    base,
				DeltaTuples:   deltaTuples,
				ResultTuples:  want.Len(),
				DeltaWallMS:   float64(deltaWall) / float64(time.Millisecond),
				RebuildWallMS: float64(rebuildWall) / float64(time.Millisecond),
				Speedup:       speedup,
			})
		}
	}
	t.AddNote("Δ-apply propagates the batch through the view's delta program; rebuild re-derives the result from the full post-batch catalog (best of trials)")
	t.AddNote("the experiment fails unless both routes match a from-scratch join and Δ-apply is strictly faster on every batch")
	t.AddNote("maintenance work scales with |Δ| (here a few edges), recomputation with |instance| — the gap widens as the base grows")
	return t, bench, nil
}
