package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/workload"
)

// TriangleExperiment (experiment EX5) runs the engine's strategies on the
// canonical cyclic query — the triangle join R(A,B) ⋈ S(B,C) ⋈ T(C,A) over
// random directed graphs of growing density. It is the deliberate *null
// case* for the paper's contribution: with only three relations every pair
// shares an attribute, so every join expression is already CPF, the
// optimal expression lives inside the CPF space, and the derived program
// can only add a small bounded overhead (Theorem 2 caps it at r(a+5) = 24;
// measured ≈ 1.1–1.2×). The paper's unbounded upside requires schemes with
// attribute-disjoint relation pairs — cycles of length ≥ 4, as in
// Example 3.
func TriangleExperiment(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:    "EX5",
		Title: "Extension — the triangle query (smallest cyclic scheme) under each strategy",
		Columns: []string{
			"graph", "edges", "triangles", "direct", "cpf-expression", "program", "prog/expr",
		},
	}
	for _, cfg := range []struct {
		nodes, edges int
	}{
		{40, 120},
		{40, 360},
		{60, 900},
	} {
		spec := workload.TriangleSpec{Nodes: cfg.nodes, Edges: cfg.edges}
		db, err := spec.TriangleDatabase(rng)
		if err != nil {
			return nil, err
		}
		want := db.Join()
		run := func(s engine.Strategy) (int64, error) {
			rep, err := engine.Join(db, engine.Options{Strategy: s})
			if err != nil {
				return 0, err
			}
			if !rep.Result.Equal(want) {
				return 0, fmt.Errorf("experiments: strategy %s wrong on triangles", s)
			}
			return rep.Cost, nil
		}
		direct, err := run(engine.StrategyDirect)
		if err != nil {
			return nil, err
		}
		expr, err := run(engine.StrategyExpression)
		if err != nil {
			return nil, err
		}
		prog, err := run(engine.StrategyProgram)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("G(%d nodes)", cfg.nodes), cfg.edges, want.Len(),
			direct, expr, prog, ratio(prog, expr))
	}
	t.AddNote("with 3 relations every pair shares an attribute: every expression is CPF, so the CPF heuristic loses nothing here")
	t.AddNote("the program route costs a small bounded overhead (its semijoin heads) — the Theorem 2 guarantee is cheap insurance")
	t.AddNote("the unbounded program upside needs attribute-disjoint pairs, i.e. cycles of length ≥ 4: see E1/EX2")
	return t, nil
}
