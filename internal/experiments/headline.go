package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/jointree"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// HeadlineClaim (experiment E11) verifies the paper's main statement by
// exhaustion on small instances: among ALL CPF join expressions over the
// scheme, at least one yields (via Algorithm 2) a program whose cost is
// below r(a+5) times the optimal join expression cost. It also reports how
// much better the best derived program is than the cheapest CPF expression
// evaluated directly — the practical payoff of deriving programs.
func HeadlineClaim(trials int, seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:    "E11",
		Title: "Main theorem by exhaustion — some CPF expression always yields a quasi-optimal program",
		Columns: []string{
			"instance", "optimal expr", "cheapest CPF expr", "best derived program",
			"prog/opt", "bound r(a+5)", "claim holds",
		},
	}

	check := func(name string, dbBuilder func() (*optimizer.Catalog, error)) error {
		cat, err := dbBuilder()
		if err != nil {
			return err
		}
		db := cat.Database()
		h := cat.Hypergraph()
		opt, err := optimizer.Optimal(cat, optimizer.SpaceAll)
		if err != nil {
			return err
		}
		cpf, err := optimizer.Optimal(cat, optimizer.SpaceCPF)
		if err != nil {
			return err
		}
		best, err := core.BestProgramOverAllCPFTrees(h, db)
		if err != nil {
			return err
		}
		qf := core.QuasiFactor(h.Len(), h.Attrs().Len())
		holds := int64(best.Cost) < int64(qf)*opt.Cost
		t.AddRow(name, opt.Cost, cpf.Cost, best.Cost,
			ratio(int64(best.Cost), opt.Cost), qf, map[bool]string{true: "yes", false: "NO"}[holds])
		if !holds {
			return fmt.Errorf("experiments: headline claim failed on %s", name)
		}
		return nil
	}

	if err := check("Example3(q=8)", func() (*optimizer.Catalog, error) {
		spec, err := workload.Example3(8)
		if err != nil {
			return nil, err
		}
		db, err := spec.CycleDatabase()
		if err != nil {
			return nil, err
		}
		return optimizer.NewCatalog(db, 0), nil
	}); err != nil {
		return nil, err
	}

	done := 0
	for attempt := 0; done < trials && attempt < trials*20; attempt++ {
		h, db, err := randomInstance(rng, 3+rng.Intn(2), 3+rng.Intn(3), 2+rng.Intn(8), 2)
		if err != nil {
			return nil, err
		}
		if db.Join().IsEmpty() {
			continue
		}
		if n, err := jointree.AllCPFTrees(h); err != nil || len(n) == 0 {
			continue
		}
		done++
		name := fmt.Sprintf("random#%d %s", done, h)
		if err := check(name, func() (*optimizer.Catalog, error) {
			return optimizer.NewCatalog(db, 0), nil
		}); err != nil {
			return nil, err
		}
	}
	t.AddNote("'claim holds' = best derived program cost < r(a+5) × optimal expression cost, verified over EVERY CPF tree")
	t.AddNote("the best derived program often undercuts the cheapest CPF expression — semijoins prune what joins must enumerate")
	return t, nil
}
