package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/workload"
)

// PaperScheme returns the running example's scheme {ABC, CDE, EFG, GHA}.
func PaperScheme() *hypergraph.Hypergraph {
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		panic(err) // the literal scheme always parses
	}
	return h
}

// Figure1Tree returns (ABC ⋈ EFG) ⋈ (CDE ⋈ GHA).
func Figure1Tree(h *hypergraph.Hypergraph) *jointree.Tree {
	return jointree.MustParse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
}

// Figure2Tree returns ((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA.
func Figure2Tree(h *hypergraph.Hypergraph) *jointree.Tree {
	return jointree.MustParse(h, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA")
}

// Algorithm1Example reproduces Example 5 (experiment E2): Algorithm 1
// applied to the Figure 1 tree with all nondeterministic choices explored
// yields exactly sixteen distinct CPF trees, among them the Figure 2 tree;
// the deterministic first-choice policy picks exactly the paper's choices.
func Algorithm1Example() (*Table, error) {
	h := PaperScheme()
	t1 := Figure1Tree(h)
	all, err := core.EnumerateCPFifications(t1, h, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E2",
		Title:   "Example 5 / Figures 1–2 — Algorithm 1 on (ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)",
		Columns: []string{"#", "CPF join expression", "is Figure 2"},
	}
	want := Figure2Tree(h)
	found := false
	for i, tr := range all {
		mark := ""
		if tr.Equal(want) {
			mark = "✓"
			found = true
		}
		t.AddRow(i+1, tr.String(h), mark)
	}
	t.AddNote("paper: \"we can produce 16 different CPF join expression trees\"; enumerated: %d", len(all))
	if !found {
		return nil, fmt.Errorf("experiments: Figure 2 tree missing from the enumeration")
	}
	det, err := core.CPFify(t1, h, nil)
	if err != nil {
		return nil, err
	}
	t.AddNote("deterministic FirstChoice policy produces %s (the paper's Example 5 choice sequence)", det.String(h))
	// How many distinct programs do the sixteen trees induce?
	programs := map[string]bool{}
	for _, tr := range all {
		d, err := core.Derive(tr, h)
		if err != nil {
			return nil, err
		}
		programs[d.Program.String()] = true
	}
	t.AddNote("Algorithm 2 maps the 16 trees to %d distinct programs", len(programs))
	return t, nil
}

// Algorithm2Example reproduces Example 6 / Figure 4 (experiment E3): the
// program Algorithm 2 derives from the Figure 2 tree, statement by
// statement, with the per-statement head sizes measured on the Example-3
// database at the given scale, plus the total program cost against the
// costs of the optimal and cheapest-CPF expressions.
func Algorithm2Example(q int64) (*Table, error) {
	h := PaperScheme()
	d, err := core.Derive(Figure2Tree(h), h)
	if err != nil {
		return nil, err
	}
	spec, err := workload.Example3(q)
	if err != nil {
		return nil, err
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		return nil, err
	}
	res, err := d.Program.Apply(db)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E3",
		Title:   fmt.Sprintf("Example 6 / Figure 4 — Algorithm 2 on the Figure 2 tree (measured at q=%d)", q),
		Columns: []string{"#", "statement", "head schema", "head size"},
	}
	for i, step := range res.Trace {
		t.AddRow(i+1, step.Stmt.String(), step.Schema.String(), step.Size)
	}
	t.AddNote("program cost on D: %d (inputs %d + statement heads)", res.Cost, db.TotalTuples())
	t.AddNote("paper: applying P to the Example 3 database costs < 2·10^{4k}; here cost ≈ q⁴/2 + inputs")
	t.AddNote("statement count %d < r(a+5) = %d (Claim C)", d.Program.Len(), d.QuasiFactor)
	if res.Output.Len() != 1 {
		return nil, fmt.Errorf("experiments: Example 6 program computed %d tuples, want 1", res.Output.Len())
	}
	return t, nil
}

// FigureTrees renders the paper's tree figures as ASCII art (supporting
// material for E2/E3).
func FigureTrees() string {
	h := PaperScheme()
	return "Figure 1 — the join expression tree of (ABC ⋈ EFG) ⋈ (CDE ⋈ GHA):\n" +
		Figure1Tree(h).Render(h) +
		"\n\nFigure 2 — the CPF tree Algorithm 1 produces from it:\n" +
		Figure2Tree(h).Render(h)
}
