package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/workload"
)

// WCOJBenchRow is one workload's program-vs-triejoin measurement in EX8.
type WCOJBenchRow struct {
	Family        string  `json:"family"`
	Config        string  `json:"config"`
	Inputs        int64   `json:"inputs"`
	ResultTuples  int     `json:"result_tuples"`
	ProgramCost   int64   `json:"program_cost"`
	WCOJCost      int64   `json:"wcoj_cost"`
	ProgramInter  int64   `json:"program_intermediates"`
	WCOJInter     int64   `json:"wcoj_intermediates"`
	ProgramWallMS float64 `json:"program_wall_ms"`
	WCOJWallMS    float64 `json:"wcoj_wall_ms"`
}

// WCOJBenchResult is the machine-readable outcome of EX8, written by
// joinbench as BENCH_wcoj.json.
type WCOJBenchResult struct {
	Experiment string         `json:"experiment"`
	Trials     int            `json:"trials"`
	Rows       []WCOJBenchRow `json:"rows"`
}

// WCOJComparison (experiment EX8) pits the worst-case-optimal Leapfrog
// Triejoin against the paper's derived program on the two cyclic families
// the repo studies: triangle joins over random graphs (the smallest cyclic
// scheme) and the Example 3 four-cycle (the paper's adversarial family).
// The headline metric is *intermediate tuples* — §2.3 cost minus the inputs
// and the output, i.e. everything materialized beyond what the query itself
// requires. The triejoin's count is structurally zero (it enumerates output
// bindings attribute-by-attribute, never a pairwise join), and the
// experiment fails if it is not strictly below the program's on every
// triangle workload — the acceptance bar for the subsystem. Wall time is
// reported as best-of-trials for both routes; it is informative, not a
// pass/fail criterion.
func WCOJComparison(seed int64, trials int) (*Table, *WCOJBenchResult, error) {
	if trials <= 0 {
		trials = 3
	}
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:    "EX8",
		Title: "Extension — worst-case-optimal triejoin vs derived program on cyclic schemes",
		Columns: []string{
			"workload", "inputs", "result",
			"program interm.", "wcoj interm.", "program wall", "wcoj wall",
		},
	}
	bench := &WCOJBenchResult{Experiment: "EX8", Trials: trials}

	type workloadCase struct {
		family string
		config string
		db     *relation.Database
	}
	var cases []workloadCase
	for _, cfg := range []struct{ nodes, edges int }{
		{40, 120},
		{40, 360},
		{60, 900},
	} {
		db, err := workload.TriangleSpec{Nodes: cfg.nodes, Edges: cfg.edges}.TriangleDatabase(rng)
		if err != nil {
			return nil, nil, err
		}
		cases = append(cases, workloadCase{
			family: "triangle",
			config: fmt.Sprintf("G(%d nodes, %d edges)", cfg.nodes, cfg.edges),
			db:     db,
		})
	}
	for _, q := range []int64{6, 10} {
		spec, err := workload.Example3(q)
		if err != nil {
			return nil, nil, err
		}
		db, err := spec.CycleDatabase()
		if err != nil {
			return nil, nil, err
		}
		cases = append(cases, workloadCase{
			family: "cycle4",
			config: fmt.Sprintf("Example3(q=%d)", q),
			db:     db,
		})
	}

	for _, c := range cases {
		want := c.db.Join()
		inputs := int64(c.db.TotalTuples())
		run := func(s engine.Strategy) (*engine.Report, time.Duration, error) {
			var best time.Duration
			var rep *engine.Report
			for i := 0; i < trials; i++ {
				start := time.Now()
				r, err := engine.Join(c.db, engine.Options{Strategy: s})
				wall := time.Since(start)
				if err != nil {
					return nil, 0, fmt.Errorf("EX8 %s %s: %w", c.config, s, err)
				}
				if !r.Result.Equal(want) {
					return nil, 0, fmt.Errorf("EX8 %s: strategy %s computed a wrong result", c.config, s)
				}
				if rep == nil || wall < best {
					best, rep = wall, r
				}
			}
			return rep, best, nil
		}
		prog, progWall, err := run(engine.StrategyProgram)
		if err != nil {
			return nil, nil, err
		}
		wcoj, wcojWall, err := run(engine.StrategyWCOJ)
		if err != nil {
			return nil, nil, err
		}
		out := int64(want.Len())
		progInter := prog.Cost - inputs - out
		wcojInter := wcoj.Cost - inputs - out
		if wcojInter != 0 {
			return nil, nil, fmt.Errorf("EX8 %s: wcoj charged %d intermediates; its cost model is inputs + output",
				c.config, wcojInter)
		}
		if c.family == "triangle" && wcojInter >= progInter {
			return nil, nil, fmt.Errorf("EX8 %s: wcoj intermediates (%d) not strictly below the program's (%d)",
				c.config, wcojInter, progInter)
		}
		t.AddRow(c.config, inputs, want.Len(), progInter, wcojInter,
			progWall.Round(10*time.Microsecond), wcojWall.Round(10*time.Microsecond))
		bench.Rows = append(bench.Rows, WCOJBenchRow{
			Family:        c.family,
			Config:        c.config,
			Inputs:        inputs,
			ResultTuples:  want.Len(),
			ProgramCost:   prog.Cost,
			WCOJCost:      wcoj.Cost,
			ProgramInter:  progInter,
			WCOJInter:     wcojInter,
			ProgramWallMS: float64(progWall) / float64(time.Millisecond),
			WCOJWallMS:    float64(wcojWall) / float64(time.Millisecond),
		})
	}
	t.AddNote("intermediates = §2.3 cost − inputs − output: what a route materializes beyond the question and the answer")
	t.AddNote("the triejoin's intermediates are structurally zero — it intersects trie levels attribute-by-attribute and never forms a pairwise join")
	t.AddNote("the program's semijoin-bounded heads are the paper's *pairwise* optimum (Theorem 2); the triejoin sidesteps the pairwise model those bounds live in")
	return t, bench, nil
}
