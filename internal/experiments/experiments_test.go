package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestExample3CostsTable(t *testing.T) {
	table, err := Example3Costs([]int64{6, 10}, []int64{100})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(table.Rows))
	}
	// At q=100 (k=2) the paper's shape must hold: optimal below the
	// 10^{4k+1} ceiling, cheapest CPF a full order of magnitude above the
	// optimal (the paper's constants differ slightly — its family is 2× our
	// payloads — but the Θ(q⁴) vs Θ(q⁵) separation is the claim).
	row := table.Rows[2]
	opt, err := strconv.ParseInt(row[2], 10, 64)
	if err != nil {
		t.Fatalf("optimal cell %q: %v", row[2], err)
	}
	cpf, err := strconv.ParseInt(row[4], 10, 64)
	if err != nil {
		t.Fatalf("CPF cell %q: %v", row[4], err)
	}
	if opt >= 1_000_000_000 {
		t.Errorf("q=100: optimal %d ≥ 10^{4k+1} = 10^9", opt)
	}
	if cpf <= 10*opt {
		t.Errorf("q=100: cheapest CPF %d ≤ 10 × optimal %d", cpf, opt)
	}
	// Measured rows must carry a program cost; analytic-only rows must not.
	if table.Rows[0][7] == "—" {
		t.Error("measured row lost its program cost")
	}
	if table.Rows[2][7] != "—" {
		t.Error("analytic row unexpectedly measured a program")
	}
}

func TestAlgorithm1ExampleSixteen(t *testing.T) {
	table, err := Algorithm1Example()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 16 {
		t.Fatalf("rows = %d, want 16 (Example 5)", len(table.Rows))
	}
	marked := 0
	for _, row := range table.Rows {
		if row[2] == "✓" {
			marked++
		}
	}
	if marked != 1 {
		t.Errorf("Figure 2 marked %d times, want 1", marked)
	}
}

func TestAlgorithm2ExampleGolden(t *testing.T) {
	table, err := Algorithm2Example(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 10 {
		t.Fatalf("statements = %d, want 10 (Example 6)", len(table.Rows))
	}
	if got := table.Rows[0][1]; got != "R(V) := R(ABC) ⋉ R(CDE)" {
		t.Errorf("first statement = %q", got)
	}
	if got := table.Rows[9][1]; got != "R(V) := R(V) ⋈ R(GHA)" {
		t.Errorf("last statement = %q", got)
	}
}

func TestTheorem1VerificationTable(t *testing.T) {
	table, err := Theorem1Verification(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		if row[1] != row[2] {
			t.Errorf("trials %s != correct %s", row[1], row[2])
		}
	}
}

func TestTheorem2BoundTable(t *testing.T) {
	table, err := Theorem2Bound(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		if row[len(row)-1] != "0" {
			t.Errorf("violations = %s, want 0 (row %v)", row[len(row)-1], row)
		}
	}
}

func TestFullReducerExperimentTable(t *testing.T) {
	table, err := FullReducerExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	if table.Rows[0][4] == "0" {
		t.Error("dangling chain should lose tuples")
	}
	if table.Rows[1][4] != "0" {
		t.Error("pairwise-consistent data should lose nothing")
	}
}

func TestYannakakisExperimentTable(t *testing.T) {
	table, err := YannakakisExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
}

func TestSearchSpaceSizesTable(t *testing.T) {
	table, err := SearchSpaceSizes()
	if err != nil {
		t.Fatal(err)
	}
	// The 4-cycle row must reproduce the known counts: 120/80/24/16.
	found := false
	for _, row := range table.Rows {
		if row[0] == "4-cycle" {
			found = true
			if row[2] != "120" || row[3] != "80" || row[4] != "24" || row[5] != "16" {
				t.Errorf("4-cycle counts = %v", row)
			}
		}
	}
	if !found {
		t.Error("4-cycle row missing")
	}
}

func TestLinearCPFProbeTable(t *testing.T) {
	table, err := LinearCPFProbe(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		// "k/n" with k == n (no bound violations observed).
		parts := strings.Split(row[2], "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Errorf("probe found a bound violation: %v", row)
		}
	}
}

func TestOptimizerComparisonTable(t *testing.T) {
	table, err := OptimizerComparison(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Every ratio cell must be ≥ 1.00 (nothing beats the exact optimum).
	for _, row := range table.Rows {
		for _, cell := range row[2:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("cell %q: %v", cell, err)
			}
			if v < 0.999 {
				t.Errorf("method beat the optimal DP: %v", row)
			}
		}
	}
}

func TestTableRender(t *testing.T) {
	table := &Table{
		ID:      "T",
		Title:   "demo",
		Columns: []string{"a", "bb"},
	}
	table.AddRow(1, "x")
	table.AddRow(22, "⋈⋈")
	table.AddNote("note %d", 7)
	var sb strings.Builder
	table.Render(&sb)
	out := sb.String()
	for _, want := range []string{"T — demo", "a   bb", "22  ⋈⋈", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureTreesRender(t *testing.T) {
	out := FigureTrees()
	for _, want := range []string{"Figure 1", "Figure 2", "{ABC, EFG}", "{ABC, CDE, EFG}"} {
		if !strings.Contains(out, want) {
			t.Errorf("FigureTrees missing %q", want)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	table := &Table{ID: "X", Columns: []string{"a", "b"}}
	table.AddRow("plain", `quo"te,comma`)
	var sb strings.Builder
	table.RenderCSV(&sb)
	want := "a,b\nplain,\"quo\"\"te,comma\"\n"
	if sb.String() != want {
		t.Errorf("RenderCSV = %q, want %q", sb.String(), want)
	}
}

func TestHeadlineClaimTable(t *testing.T) {
	table, err := HeadlineClaim(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) < 3 {
		t.Fatalf("rows = %d, want Example3 + 2 random", len(table.Rows))
	}
	for _, row := range table.Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("claim failed on %v", row)
		}
	}
}

func TestTreeProjectionExperimentTable(t *testing.T) {
	table, err := TreeProjectionExperiment(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// The Example 6 row has the known 1-scheme witness.
	if table.Rows[0][3] != "1" || table.Rows[0][4] != "ABCEFG" {
		t.Errorf("Example 6 witness = %v", table.Rows[0])
	}
}

func TestInvariantAuditTable(t *testing.T) {
	table, err := InvariantAudit(5, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		if row[3] != "0" {
			t.Errorf("violations on %v", row)
		}
	}
}

func TestStrategyComparisonTable(t *testing.T) {
	table, err := StrategyComparison(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		for _, cell := range row {
			if cell == "WRONG" {
				t.Errorf("a strategy computed a wrong result: %v", row)
			}
		}
	}
	// The acyclic strategy is inapplicable on the two cyclic workloads.
	if table.Rows[0][5] != "—" || table.Rows[2][5] != "—" {
		t.Errorf("acyclic column on cyclic rows = %q, %q", table.Rows[0][5], table.Rows[2][5])
	}
}

func TestOptimalShapeSurveyTable(t *testing.T) {
	table, err := OptimalShapeSurvey(4, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range table.Rows {
		// mean CPF/opt must be ≥ 1.
		var mean float64
		if _, err := fmt.Sscanf(row[5], "%f", &mean); err != nil || mean < 0.999 {
			t.Errorf("bad mean ratio %q in %v", row[5], row)
		}
	}
}

func TestEstimatorAccuracyTable(t *testing.T) {
	table, err := EstimatorAccuracy(14)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) < 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
}

func TestTriangleExperimentTable(t *testing.T) {
	table, err := TriangleExperiment(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// The null-case claim: program/expression overhead stays small (well
	// under the r(a+5) = 24 bound; empirically < 1.5×).
	for _, row := range table.Rows {
		var ratio float64
		if _, err := fmt.Sscanf(row[6], "%f", &ratio); err != nil {
			t.Fatalf("ratio cell %q: %v", row[6], err)
		}
		if ratio >= 1.5 {
			t.Errorf("program overhead %.2f on triangles exceeds the expected small factor: %v", ratio, row)
		}
	}
}
