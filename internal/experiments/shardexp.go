package experiments

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/relation"
	"repro/internal/shard"
	"repro/internal/workload"
)

// ShardBenchRow is one workload's sequential-vs-scatter measurement in
// EX11.
type ShardBenchRow struct {
	Family       string `json:"family"`
	Config       string `json:"config"`
	Inputs       int64  `json:"inputs"`
	ResultTuples int    `json:"result_tuples"`
	Cost         int64  `json:"cost"`
	// Shards is the effective shard count of the 4-shard run: 4 when the
	// plan scattered, 1 when the cleanliness analysis forced the
	// single-shard fallback.
	Shards       int     `json:"shards"`
	SeqWallMS    float64 `json:"seq_wall_ms"`
	Shard2WallMS float64 `json:"shard2_wall_ms"`
	Shard4WallMS float64 `json:"shard4_wall_ms"`
	Speedup      float64 `json:"speedup"`
	// Largest marks the triangle family's biggest size — the row the
	// >= 1.5x acceptance bar applies to.
	Largest bool `json:"largest"`
}

// ShardBenchResult is the machine-readable outcome of EX11, written by
// joinbench as BENCH_shard.json.
type ShardBenchResult struct {
	Experiment string          `json:"experiment"`
	Trials     int             `json:"trials"`
	Rows       []ShardBenchRow `json:"rows"`
}

// shardBenchBudget keeps the governor counting charges without ever
// aborting, so sequential and sharded Produced are comparable.
const shardBenchBudget = int64(1) << 40

// ShardScaling (experiment EX11) measures the one-round scatter-gather
// sharding of internal/shard against sequential execution of the same
// columnar plan. Every trial is differential: the merged result, the §2.3
// cost, and the governor charge must equal the sequential run's exactly
// (the experiment hard-fails on any divergence), so the only degree of
// freedom is wall time — n shards evaluating n-times-smaller partitions
// concurrently versus one evaluation of the full catalog. The acceptance
// bar: on the triangle family's largest size the 4-shard in-process
// scatter must be at least 1.5x faster than sequential, best-of-trials
// against best-of-trials. Smaller sizes are reported but informative only
// (tiny partitions don't amortize the scatter).
func ShardScaling(seed int64, trials int) (*Table, *ShardBenchResult, error) {
	if trials <= 0 {
		trials = 3
	}
	// Concurrent shard evaluations allocate in parallel; at the default GC
	// target the mark assists throttle exactly the concurrency being
	// measured. Pin a higher target for the whole experiment — sequential
	// and sharded runs are timed under the same setting.
	defer debug.SetGCPercent(debug.SetGCPercent(300))
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:    "EX11",
		Title: "Extension — scatter-gather sharding vs sequential execution of the same plan",
		Columns: []string{
			"workload", "inputs", "result", "shards",
			"seq wall", "2-shard wall", "4-shard wall", "speedup@4",
		},
	}
	bench := &ShardBenchResult{Experiment: "EX11", Trials: trials}

	type workloadCase struct {
		family  string
		config  string
		db      *relation.Database
		largest bool
	}
	var cases []workloadCase
	for _, cfg := range []struct {
		nodes, edges int
		largest      bool
	}{
		{60, 900, false},
		{120, 3000, false},
		{200, 8000, false},
		{300, 18000, true},
	} {
		db, err := workload.TriangleSpec{Nodes: cfg.nodes, Edges: cfg.edges}.TriangleDatabase(rng)
		if err != nil {
			return nil, nil, err
		}
		cases = append(cases, workloadCase{
			family:  "triangle",
			config:  fmt.Sprintf("G(%d nodes, %d edges)", cfg.nodes, cfg.edges),
			db:      db,
			largest: cfg.largest,
		})
	}
	for _, q := range []int64{10, 14} {
		spec, err := workload.Example3(q)
		if err != nil {
			return nil, nil, err
		}
		db, err := spec.CycleDatabase()
		if err != nil {
			return nil, nil, err
		}
		cases = append(cases, workloadCase{
			family: "cycle4",
			config: fmt.Sprintf("Example3(q=%d)", q),
			db:     db,
		})
	}

	opts := engine.Options{Limits: govern.Limits{MaxTuples: shardBenchBudget}}
	for _, c := range cases {
		plan, err := engine.PlanFor(c.db, engine.Options{Strategy: engine.StrategyColumnar})
		if err != nil {
			return nil, nil, err
		}
		inputs := int64(c.db.TotalTuples())

		var seq *engine.Report
		var seqWall time.Duration
		for i := 0; i < trials; i++ {
			start := time.Now()
			r, err := engine.ExecutePlan(c.db, plan, opts)
			wall := time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("EX11 %s: sequential: %w", c.config, err)
			}
			if seq == nil || wall < seqWall {
				seqWall, seq = wall, r
			}
		}

		walls := map[int]time.Duration{}
		var rep4 *engine.Report
		for _, n := range []int{2, 4} {
			// Threshold 0: partition every relation carrying the attribute,
			// broadcast only the ones that lack it.
			g, err := shard.NewGroup(c.config, c.db, n, 0)
			if err != nil {
				return nil, nil, err
			}
			ex := shard.NewInProcess(g)
			var best time.Duration
			var rep *engine.Report
			for i := 0; i < trials; i++ {
				start := time.Now()
				r, err := shard.Run(g, plan, opts, ex)
				wall := time.Since(start)
				if err != nil {
					return nil, nil, fmt.Errorf("EX11 %s: %d shards: %w", c.config, n, err)
				}
				if !r.Result.Equal(seq.Result) {
					return nil, nil, fmt.Errorf("EX11 %s: %d-shard result (%d tuples) != sequential (%d tuples)",
						c.config, n, r.Result.Len(), seq.Result.Len())
				}
				if r.Cost != seq.Cost {
					return nil, nil, fmt.Errorf("EX11 %s: %d-shard cost %d != sequential %d",
						c.config, n, r.Cost, seq.Cost)
				}
				if r.Produced != seq.Produced {
					return nil, nil, fmt.Errorf("EX11 %s: %d-shard governor charge %d != sequential %d",
						c.config, n, r.Produced, seq.Produced)
				}
				if rep == nil || wall < best {
					best, rep = wall, r
				}
			}
			walls[n] = best
			if n == 4 {
				rep4 = rep
			}
		}

		speedup := float64(seqWall) / float64(walls[4])
		if c.largest && speedup < 1.5 {
			return nil, nil, fmt.Errorf("EX11 %s: 4-shard speedup %.2fx below the 1.5x acceptance bar on the family's largest size (seq %s, 4-shard %s)",
				c.config, speedup, seqWall, walls[4])
		}
		t.AddRow(c.config, inputs, seq.Result.Len(), rep4.Shards,
			seqWall.Round(10*time.Microsecond),
			walls[2].Round(10*time.Microsecond),
			walls[4].Round(10*time.Microsecond),
			fmt.Sprintf("%.2fx", speedup))
		bench.Rows = append(bench.Rows, ShardBenchRow{
			Family:       c.family,
			Config:       c.config,
			Inputs:       inputs,
			ResultTuples: seq.Result.Len(),
			Cost:         seq.Cost,
			Shards:       rep4.Shards,
			SeqWallMS:    float64(seqWall) / float64(time.Millisecond),
			Shard2WallMS: float64(walls[2]) / float64(time.Millisecond),
			Shard4WallMS: float64(walls[4]) / float64(time.Millisecond),
			Speedup:      speedup,
			Largest:      c.largest,
		})
	}
	t.AddNote("every trial is differential: merged result, §2.3 cost, and governor charge are asserted equal to the sequential run's")
	t.AddNote("partitioning hashes the max-degree attribute; relations lacking it are broadcast, and the merged cost deducts the re-counted broadcast inputs")
	t.AddNote("shards column shows the effective count: 1 means the cleanliness analysis forced the single-shard fallback for that plan")
	t.AddNote("acceptance: >= 1.5x at 4 in-process shards on the triangle family's largest size (best-of-trials)")
	t.AddNote("GC target pinned (GOGC 300) for the whole experiment so mark assists don't throttle the concurrency under measurement")
	return t, bench, nil
}
