package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/optimizer"
	"repro/internal/relation"
)

// EstimatorAccuracy (experiment EX4) measures join-size estimation error on
// uniform and Zipf-skewed data for the two estimators the optimizer carries:
// the System-R independence/uniformity estimate and equi-depth histograms.
// Error is the max of est/truth and truth/est (1.00 = exact). This is the
// optimizer-quality backdrop to the paper's exact-cost framing: real
// optimizers search with estimates, and skew is where estimates — and so
// CPF-pruned searches — go wrong.
func EstimatorAccuracy(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:    "EX4",
		Title: "Extension — join-size estimation error (×, 1.00 = exact)",
		Columns: []string{
			"data", "rows", "true join size", "independence est", "error", "histogram est", "error",
		},
	}
	configs := []struct {
		name string
		gen  func(n int) []int64
		rows int
	}{
		{"uniform d=100", func(n int) []int64 {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(rng.Intn(100))
			}
			return vals
		}, 3000},
		{"zipf s=1.2", zipfGen(rng, 1.2, 199), 3000},
		{"zipf s=1.5", zipfGen(rng, 1.5, 199), 3000},
		{"zipf s=2.0", zipfGen(rng, 2.0, 199), 3000},
	}
	for _, cfg := range configs {
		a := columnRelation(cfg.gen(cfg.rows))
		b := columnRelation(cfg.gen(cfg.rows))
		truth := trueMatches(a, b)
		if truth == 0 {
			continue
		}
		sa, sb := optimizer.CollectStats(a), optimizer.CollectStats(b)
		div := sa.Distinct["x"]
		if sb.Distinct["x"] > div {
			div = sb.Distinct["x"]
		}
		ind := sa.Card * sb.Card / div
		ha, err := optimizer.BuildHistogram(a, "x", 30)
		if err != nil {
			return nil, err
		}
		hb, err := optimizer.BuildHistogram(b, "x", 30)
		if err != nil {
			return nil, err
		}
		hist := optimizer.EstimateEquiJoin(ha, hb)
		t.AddRow(cfg.name, cfg.rows, truth,
			ind, fmt.Sprintf("%.2f×", errorFactor(ind, truth)),
			hist, fmt.Sprintf("%.2f×", errorFactor(hist, truth)))
	}
	t.AddNote("independence assumes every value equally likely; skew concentrates mass on few values and the estimate collapses")
	t.AddNote("equi-depth histograms keep per-bucket distinct counts, tracking the skew — why production optimizers carry them")
	return t, nil
}

func zipfGen(rng *rand.Rand, s float64, max uint64) func(n int) []int64 {
	z := rand.NewZipf(rng, s, 1, max)
	return func(n int) []int64 {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(z.Uint64())
		}
		return vals
	}
}

func columnRelation(vals []int64) *relation.Relation {
	r := relation.New(relation.MustSchema("x", "rid"))
	for i, v := range vals {
		r.MustInsert(relation.Ints(v, int64(i)))
	}
	return r
}

func trueMatches(a, b *relation.Relation) int64 {
	counts := map[int64]int64{}
	pa, _ := a.Schema().Position("x")
	for _, row := range a.Rows() {
		counts[row[pa].AsInt()]++
	}
	pb, _ := b.Schema().Position("x")
	var total int64
	for _, row := range b.Rows() {
		total += counts[row[pb].AsInt()]
	}
	return total
}

func errorFactor(est, truth int64) float64 {
	if est <= 0 {
		return float64(truth)
	}
	r := float64(est) / float64(truth)
	if r < 1 {
		return 1 / r
	}
	return r
}
