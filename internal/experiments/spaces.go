package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/jointree"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// SearchSpaceSizes (experiment E9) tabulates the §4 discussion: the number
// of join expression trees in each search space — all, CPF, linear, linear
// CPF — for cycle, chain, and clique schemes of growing size. All four grow
// exponentially; the heuristics shrink the space but never to polynomial.
func SearchSpaceSizes() (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "§4 — search space sizes (number of join expression trees)",
		Columns: []string{"scheme", "relations", "all trees", "CPF trees", "linear", "linear CPF"},
	}
	for _, n := range []int{4, 6, 8, 10} {
		spec := workload.UniformCycle(n, 2, 1)
		h, err := spec.CycleScheme()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d-cycle", n), n,
			jointree.CountTrees(n), jointree.CountCPFTrees(h),
			jointree.CountLinearTrees(h, false), jointree.CountLinearTrees(h, true))
	}
	for _, n := range []int{4, 6, 8, 10} {
		h, err := workload.ChainScheme(n)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d-chain", n), n,
			jointree.CountTrees(n), jointree.CountCPFTrees(h),
			jointree.CountLinearTrees(h, false), jointree.CountLinearTrees(h, true))
	}
	for _, k := range []int{3, 4, 5} {
		h, err := workload.CliqueScheme(k)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("K%d-clique", k), h.Len(),
			jointree.CountTrees(h.Len()), jointree.CountCPFTrees(h),
			jointree.CountLinearTrees(h, false), jointree.CountLinearTrees(h, true))
	}
	t.AddNote("the paper (§4): even restricted to linear CPF expressions the space stays exponential; finding a polynomial subspace containing a quasi-optimal program source is open")
	return t, nil
}

// LinearCPFProbe (experiment E10) probes the paper's open question: among
// linear CPF join expressions, does one always yield a quasi-optimal
// program via Algorithm 2? For random small instances it exhaustively
// derives a program from every linear CPF tree and compares the best
// program cost against r(a+5) times the optimal expression cost.
func LinearCPFProbe(trials int, seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:    "E10",
		Title: "§4 open question — programs derived from linear CPF trees (empirical probe)",
		Columns: []string{
			"relations", "instances", "best-program ≤ bound", "worst best/optimal", "bound r(a+5) (min..max)",
		},
	}
	for _, r := range []int{3, 4, 5} {
		done, within := 0, 0
		worst := 0.0
		minBound, maxBound := 1<<30, 0
		for attempt := 0; done < trials && attempt < trials*30; attempt++ {
			h, db, err := randomInstance(rng, r, 3+rng.Intn(3), 2+rng.Intn(8), 2)
			if err != nil {
				return nil, err
			}
			if db.Join().IsEmpty() {
				continue
			}
			trees, err := jointree.AllLinearTrees(h, true)
			if err != nil || len(trees) == 0 {
				continue
			}
			cat := optimizer.NewCatalog(db, 0)
			opt, err := optimizer.Optimal(cat, optimizer.SpaceAll)
			if err != nil {
				continue
			}
			done++
			qf := core.QuasiFactor(h.Len(), h.Attrs().Len())
			if qf < minBound {
				minBound = qf
			}
			if qf > maxBound {
				maxBound = qf
			}
			best := int64(1) << 62
			for _, tr := range trees {
				d, err := core.Derive(tr, h)
				if err != nil {
					return nil, err
				}
				res, err := d.Program.Apply(db)
				if err != nil {
					return nil, err
				}
				if int64(res.Cost) < best {
					best = int64(res.Cost)
				}
			}
			r := float64(best) / float64(opt.Cost)
			if r > worst {
				worst = r
			}
			if best < int64(qf)*opt.Cost {
				within++
			}
		}
		t.AddRow(r, done, fmt.Sprintf("%d/%d", within, done), fmt.Sprintf("%.2f", worst),
			fmt.Sprintf("%d..%d", minBound, maxBound))
	}
	t.AddNote("the paper leaves open whether a linear CPF expression always yields a quasi-optimal program; no counterexample surfaced in this probe")
	t.AddNote("a probe is evidence, not proof — the question remains open")
	return t, nil
}

// OptimizerComparison (extension) pits the heuristic baselines the paper
// cites against the exact DPs on the Example-3 family and on random cyclic
// schemes, reporting each method's cost relative to the optimum.
func OptimizerComparison(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:    "EX1",
		Title: "Extension — optimizer baselines vs exact DP (cost / optimal)",
		Columns: []string{
			"instance", "optimal", "CPF DP", "linear DP", "greedy", "iter.improve", "sim.anneal", "estimator DP",
		},
	}
	instances := []struct {
		name string
		mk   func() (*optimizer.Catalog, error)
	}{
		{"Example3(q=10)", func() (*optimizer.Catalog, error) {
			spec, err := workload.Example3(10)
			if err != nil {
				return nil, err
			}
			db, err := spec.CycleDatabase()
			if err != nil {
				return nil, err
			}
			return optimizer.NewCatalog(db, 0), nil
		}},
		{"uniform 5-cycle", func() (*optimizer.Catalog, error) {
			db, err := workload.UniformCycle(5, 3, 4).CycleDatabase()
			if err != nil {
				return nil, err
			}
			return optimizer.NewCatalog(db, 0), nil
		}},
		{"random 6-relation", func() (*optimizer.Catalog, error) {
			h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
				Relations: 6, Attrs: 6, MaxArity: 3, Connected: true,
			})
			if err != nil {
				return nil, err
			}
			db, err := workload.RandomDatabase(rng, h, 25, 3)
			if err != nil {
				return nil, err
			}
			return optimizer.NewCatalog(db, 0), nil
		}},
	}
	for _, inst := range instances {
		cat, err := inst.mk()
		if err != nil {
			return nil, err
		}
		opt, err := optimizer.Optimal(cat, optimizer.SpaceAll)
		if err != nil {
			return nil, err
		}
		cpf, err := optimizer.Optimal(cat, optimizer.SpaceCPF)
		if err != nil {
			return nil, err
		}
		lin, err := optimizer.Optimal(cat, optimizer.SpaceLinear)
		if err != nil {
			return nil, err
		}
		greedy, err := optimizer.Greedy(cat, false)
		if err != nil {
			return nil, err
		}
		ii, err := optimizer.IterativeImprovement(cat, rng, 10)
		if err != nil {
			return nil, err
		}
		sa, err := optimizer.SimulatedAnnealing(cat, rng, optimizer.AnnealOptions{})
		if err != nil {
			return nil, err
		}
		est, err := optimizer.EstimatedOptimal(cat.Database(), optimizer.SpaceCPF)
		if err != nil {
			return nil, err
		}
		estTrue, err := optimizer.CostOf(cat, est.Tree)
		if err != nil {
			return nil, err
		}
		t.AddRow(inst.name, opt.Cost,
			ratio(cpf.Cost, opt.Cost), ratio(lin.Cost, opt.Cost), ratio(greedy.Cost, opt.Cost),
			ratio(ii.Cost, opt.Cost), ratio(sa.Cost, opt.Cost), ratio(estTrue, opt.Cost))
	}
	t.AddNote("estimator DP plans with independence-assumption cardinalities inside the CPF space, then its plan is costed with true cardinalities")
	t.AddNote("on Example 3 every CPF-restricted method, exact or heuristic, is pinned above the CPF floor — only the program derivation escapes it")
	return t, nil
}
