package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/jointree"
)

// TreeProjectionExperiment (experiment E12) checks the §1 connection the
// paper cites from Goodman–Shmueli and Sagiv–Shmueli: a program that solves
// the join creates an embedded acyclic database scheme among the inputs,
// the result, and the generated relations. For programs derived by
// Algorithms 1+2 it reports the minimal witnessing subset of generated
// schemes.
func TreeProjectionExperiment(trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "§1 tree-projection connection — derived programs embed an acyclic scheme",
		Columns: []string{"instance", "statements", "generated schemes", "witness size", "witness (excluding the result edge)"},
	}

	// The paper's own program first.
	h := PaperScheme()
	d, err := core.Derive(Figure2Tree(h), h)
	if err != nil {
		return nil, err
	}
	if err := addTreeProjectionRow(t, "Example 6 program", d); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(seed))
	for done := 0; done < trials; {
		hg, _, err := randomInstance(rng, 3+rng.Intn(3), 3+rng.Intn(3), 1, 2)
		if err != nil {
			return nil, err
		}
		tr := jointree.RandomTree(rng, hg.Len())
		d, err := core.DeriveFromTree(tr, hg, core.RandomChoice{Rng: rng})
		if err != nil {
			return nil, err
		}
		done++
		if err := addTreeProjectionRow(t, fmt.Sprintf("random#%d %s", done, hg), d); err != nil {
			return nil, err
		}
	}
	t.AddNote("witness = minimal subset of generated (intermediate) schemes that, with the inputs and the result, forms an acyclic hypergraph")
	t.AddNote("with the result edge included a witness trivially always exists (verified); the column shows the harder variant without it")
	return t, nil
}

func addTreeProjectionRow(t *Table, name string, d *core.Derivation) error {
	heads, _, err := core.GeneratedSchemes(d.Program, d.Scheme)
	if err != nil {
		return err
	}
	// The informative variant: can the intermediates alone (without the
	// all-covering result scheme) embed the inputs into an acyclic scheme?
	witness, ok, err := core.TreeProjection(d.Program, d.Scheme, false)
	witnessCell := "none without the result edge"
	witnessSize := "—"
	if err != nil {
		return err
	}
	if ok {
		parts := make([]string, len(witness))
		for i, w := range witness {
			parts[i] = w.String()
		}
		witnessCell = strings.Join(parts, ", ")
		if len(parts) == 0 {
			witnessCell = "∅ (inputs already acyclic)"
		}
		witnessSize = fmt.Sprint(len(witness))
	}
	// The guaranteed variant must always succeed.
	if _, ok, err := core.TreeProjection(d.Program, d.Scheme, true); err != nil || !ok {
		return fmt.Errorf("experiments: no embedded acyclic scheme for %s (err %v)", name, err)
	}
	t.AddRow(name, d.Program.Len(), len(heads), witnessSize, witnessCell)
	return nil
}
