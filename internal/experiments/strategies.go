package experiments

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/workload"
)

// StrategyComparison (experiment EX2) runs the engine's execution strategies
// head to head on three characteristic workloads: the paper's adversarial
// cycle (program wins; reduction useless), a dangling acyclic chain
// (reduction wins), and a benign random cyclic instance (everything is
// close). Cells are execution costs; "—" marks inapplicable strategies.
func StrategyComparison(seed int64) (*Table, error) {
	t := &Table{
		ID:    "EX2",
		Title: "Extension — engine strategies head to head (execution cost)",
		Columns: []string{
			"workload", "direct", "cpf-expression", "reduce-then-join", "program", "acyclic", "auto picks",
		},
	}
	type wl struct {
		name string
		db   *relation.Database
	}
	var workloads []wl

	spec, err := workload.Example3(10)
	if err != nil {
		return nil, err
	}
	ex3, err := spec.CycleDatabase()
	if err != nil {
		return nil, err
	}
	workloads = append(workloads, wl{"Example3(q=10), cyclic adversarial", ex3})

	chain, err := workload.DanglingChainDatabase(5, 30, 60)
	if err != nil {
		return nil, err
	}
	workloads = append(workloads, wl{"5-chain + dangling, acyclic", chain})

	cyc, err := workload.UniformCycle(5, 3, 5).CycleDatabase()
	if err != nil {
		return nil, err
	}
	workloads = append(workloads, wl{"uniform 5-cycle, benign", cyc})

	for _, w := range workloads {
		want := w.db.Join()
		cell := func(s engine.Strategy) string {
			rep, err := engine.Join(w.db, engine.Options{Strategy: s})
			if err != nil {
				return "—"
			}
			if !rep.Result.Equal(want) {
				return "WRONG"
			}
			return fmt.Sprint(rep.Cost)
		}
		auto, err := engine.Join(w.db, engine.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(w.name,
			cell(engine.StrategyDirect),
			cell(engine.StrategyExpression),
			cell(engine.StrategyReduceThenJoin),
			cell(engine.StrategyProgram),
			cell(engine.StrategyAcyclic),
			auto.Strategy.String(),
		)
	}
	t.AddNote("on the adversarial cycle the program route wins by a wide margin and reduce-then-join pays its reduction for nothing (pairwise-consistent data)")
	t.AddNote("auto picks the acyclic route on acyclic schemes and the program route on cyclic ones; on benign data all optimized routes are close")
	t.AddNote("dangling tuples on a chain mostly fail to join rather than multiply, so plain evaluation stays competitive there — reducers shine when dangling mass would otherwise fan out")
	_ = seed
	return t, nil
}
