package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/workload"
)

// ParallelBenchRow is one worker-count measurement of EX7.
type ParallelBenchRow struct {
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	Speedup      float64 `json:"speedup"`
	ResultTuples int     `json:"result_tuples"`
	Produced     int64   `json:"produced"`
}

// ParallelBenchResult is the machine-readable outcome of EX7, written by
// joinbench as BENCH_parallel.json: the sequential-vs-parallel wall-clock
// comparison of one cached plan executed at increasing worker counts.
type ParallelBenchResult struct {
	Experiment   string             `json:"experiment"`
	Workload     string             `json:"workload"`
	Strategy     string             `json:"strategy"`
	Trials       int                `json:"trials"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	Statements   int                `json:"statements"`
	CriticalPath int                `json:"critical_path"`
	Rows         []ParallelBenchRow `json:"rows"`
}

// ParallelSpeedup (experiment EX7) measures governed intra-query parallelism
// on the paper's adversarial cycle: it derives the Algorithm-2 program plan
// once (engine.PlanFor — Theorem 1 licenses the reuse), then executes the
// same cached plan at worker counts 1, 2, 4, and GOMAXPROCS, timing each
// (best of trials) and checking that every run returns the same result
// cardinality and charges the same governed tuple total. Speedup is
// wall(1 worker) / wall(w workers); on a single-core host it hovers near 1
// by construction, so nothing here asserts a floor — the numbers are the
// experiment.
func ParallelSpeedup(q int64, trials int) (*Table, *ParallelBenchResult, error) {
	if trials <= 0 {
		trials = 3
	}
	spec, err := workload.Example3(q)
	if err != nil {
		return nil, nil, err
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		return nil, nil, err
	}
	plan, err := engine.PlanFor(db, engine.Options{Strategy: engine.StrategyProgram})
	if err != nil {
		return nil, nil, err
	}

	maxProcs := runtime.GOMAXPROCS(0)
	seen := map[int]bool{}
	var counts []int
	for _, w := range []int{1, 2, 4, maxProcs} {
		if w >= 1 && !seen[w] {
			seen[w] = true
			counts = append(counts, w)
		}
	}
	sort.Ints(counts)

	t := &Table{
		ID:      "EX7",
		Title:   fmt.Sprintf("Extension — intra-query parallelism on Example3(q=%d), cached program plan", q),
		Columns: []string{"workers", "wall (best of trials)", "speedup", "result tuples", "produced"},
	}
	bench := &ParallelBenchResult{
		Experiment:   "EX7",
		Workload:     fmt.Sprintf("Example3(q=%d) cycle", q),
		Strategy:     plan.Strategy.String(),
		Trials:       trials,
		GOMAXPROCS:   maxProcs,
		Statements:   plan.Derivation.Program.Len(),
		CriticalPath: plan.Derivation.Program.CriticalPathLen(),
	}

	var baseWall time.Duration
	baseTuples, baseProduced := -1, int64(-1)
	for _, w := range counts {
		var best time.Duration
		var rep *engine.Report
		for i := 0; i < trials; i++ {
			// The huge budget never binds; it just activates the governor so
			// Produced records the charged totals for the invariant check.
			opts := engine.Options{Workers: w, Limits: govern.Limits{MaxTuples: 1 << 60}}
			start := time.Now()
			r, err := engine.ExecutePlan(db, plan, opts)
			wall := time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("EX7 workers=%d: %w", w, err)
			}
			if rep == nil || wall < best {
				best, rep = wall, r
			}
		}
		if baseTuples < 0 {
			baseWall, baseTuples, baseProduced = best, rep.Result.Len(), rep.Produced
		}
		if rep.Result.Len() != baseTuples || rep.Produced != baseProduced {
			return nil, nil, fmt.Errorf("EX7 workers=%d: result %d tuples / %d produced, want %d / %d (parallel execution must be invisible to the cost model)",
				w, rep.Result.Len(), rep.Produced, baseTuples, baseProduced)
		}
		speedup := float64(baseWall) / float64(best)
		t.AddRow(w, best.Round(10*time.Microsecond), fmt.Sprintf("%.2fx", speedup), rep.Result.Len(), rep.Produced)
		bench.Rows = append(bench.Rows, ParallelBenchRow{
			Workers:      w,
			WallMS:       float64(best) / float64(time.Millisecond),
			Speedup:      speedup,
			ResultTuples: rep.Result.Len(),
			Produced:     rep.Produced,
		})
	}
	t.AddNote("one plan (Theorem 1), many executions: the DAG scheduler runs the program's %d statements over a critical path of %d, and every join/semijoin/projection hash-partitions across the workers",
		bench.Statements, bench.CriticalPath)
	t.AddNote("result cardinality and governed produced-tuple totals are identical at every worker count — parallelism never changes what is computed or charged")
	t.AddNote("GOMAXPROCS here is %d; speedup on a single-core host is ~1 by construction", maxProcs)
	return t, bench, nil
}
