package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/jointree"
	"repro/internal/workload"
)

// InvariantAudit (experiment E13) validates the Theorem 1 proof's
// intermediate claims empirically: every statement of a derived program
// must leave its head equal to π_schema(⋈D[𝒱ᵢ]) for the proof's node subset
// 𝒱ᵢ. The derivation annotates each statement with that subset; the audit
// executes the program and checks every line.
func InvariantAudit(trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Theorem 1 proof audit — per-statement invariants of derived programs",
		Columns: []string{"source", "programs", "statements checked", "violations"},
	}

	// The paper's Example 6 program.
	h := PaperScheme()
	d, err := core.Derive(Figure2Tree(h), h)
	if err != nil {
		return nil, err
	}
	spec, err := workload.Example3(4)
	if err != nil {
		return nil, err
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		return nil, err
	}
	n, err := core.VerifyInvariants(d, db)
	if err != nil {
		return nil, fmt.Errorf("experiments: Example 6 invariant violated: %v", err)
	}
	t.AddRow("Example 6 program", 1, n, 0)

	rng := rand.New(rand.NewSource(seed))
	programs, stmts := 0, 0
	for trial := 0; trial < trials; trial++ {
		hg, rdb, err := randomInstance(rng, 2+rng.Intn(4), 3+rng.Intn(4), 1+rng.Intn(8), 3)
		if err != nil {
			return nil, err
		}
		tr := jointree.RandomTree(rng, hg.Len())
		rd, err := core.DeriveFromTree(tr, hg, core.RandomChoice{Rng: rng})
		if err != nil {
			return nil, err
		}
		k, err := core.VerifyInvariants(rd, rdb)
		if err != nil {
			return nil, fmt.Errorf("experiments: invariant violated on %s: %v", hg, err)
		}
		programs++
		stmts += k
	}
	t.AddRow("random derivations", programs, stmts, 0)
	t.AddNote("after statement k the head equals π_schema(⋈D[𝒱ᵢ]) — the claims the paper's Theorem 1 proof sketches, checked line by line")
	return t, nil
}
