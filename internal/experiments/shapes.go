package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/optimizer"
)

// OptimalShapeSurvey (experiment EX3) asks how often the two heuristics the
// paper discusses actually lose anything: across random cyclic and acyclic
// instances, how often is the true optimal expression already CPF? Already
// linear? And when CPF loses, by how much on average? This is the empirical
// side of Tay's question ([9]) that the paper's Example 3 answers in the
// worst case.
func OptimalShapeSurvey(trialsPerRow int, seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:    "EX3",
		Title: "Extension — how often do the heuristics lose? (shape of true optima on random data)",
		Columns: []string{
			"relations", "domain", "instances", "optimal is CPF", "optimal is linear",
			"mean CPF/opt", "max CPF/opt",
		},
	}
	for _, row := range []struct {
		relations, domain int
	}{
		{4, 2}, {4, 4}, {5, 2}, {5, 4}, {6, 3},
	} {
		done, cpfOK, linOK := 0, 0, 0
		sum, max := 0.0, 0.0
		for attempt := 0; done < trialsPerRow && attempt < trialsPerRow*20; attempt++ {
			h, db, err := randomInstance(rng, row.relations, 3+rng.Intn(4), 3+rng.Intn(12), row.domain)
			if err != nil {
				return nil, err
			}
			cat := optimizer.NewCatalog(db, 0)
			opt, err := optimizer.Optimal(cat, optimizer.SpaceAll)
			if err != nil {
				continue
			}
			cpf, err := optimizer.Optimal(cat, optimizer.SpaceCPF)
			if err != nil {
				continue // disconnected scheme: no CPF plan at all
			}
			lin, err := optimizer.Optimal(cat, optimizer.SpaceLinear)
			if err != nil {
				continue
			}
			done++
			if opt.Tree.IsCPF(h) || cpf.Cost == opt.Cost {
				cpfOK++
			}
			if opt.Tree.IsLinear() || lin.Cost == opt.Cost {
				linOK++
			}
			r := float64(cpf.Cost) / float64(opt.Cost)
			sum += r
			if r > max {
				max = r
			}
		}
		if done == 0 {
			continue
		}
		t.AddRow(row.relations, row.domain, done,
			fmt.Sprintf("%d/%d", cpfOK, done), fmt.Sprintf("%d/%d", linOK, done),
			fmt.Sprintf("%.3f", sum/float64(done)), fmt.Sprintf("%.3f", max))
	}
	t.AddNote("on typical random data the CPF heuristic is near-free (ratios ≈ 1), matching why optimizers adopt it")
	t.AddNote("Example 3 shows the worst case is unbounded anyway — the paper's point is about guarantees, not averages")
	return t, nil
}
