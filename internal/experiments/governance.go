package experiments

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/workload"
)

// GovernanceLadder (experiment EX6) runs every execution strategy on the
// paper's adversarial cycle under a tuple budget and shows which routes
// blow it, which complete, and how governed auto degrades along the
// strategy ladder to a completing route. The budget defaults to a value
// between the program route's produced tuples and the classical routes'
// (so the ladder is actually exercised); maxTuples overrides it.
func GovernanceLadder(q, maxTuples int64) (*Table, error) {
	if maxTuples <= 0 {
		maxTuples = 15000
	}
	t := &Table{
		ID:    "EX6",
		Title: fmt.Sprintf("Extension — execution governance on Example3(q=%d), MaxTuples=%d", q, maxTuples),
		Columns: []string{
			"strategy", "outcome", "produced", "result tuples", "fallbacks",
		},
	}
	spec, err := workload.Example3(q)
	if err != nil {
		return nil, err
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		return nil, err
	}
	want := db.Join()

	lim := govern.Limits{MaxTuples: maxTuples}
	for _, s := range []engine.Strategy{
		engine.StrategyDirect, engine.StrategyExpression,
		engine.StrategyReduceThenJoin, engine.StrategyProgram,
		engine.StrategyAuto,
	} {
		rep, err := engine.Join(db, engine.Options{Strategy: s, Limits: lim})
		switch {
		case err == nil:
			outcome := "completed"
			result := fmt.Sprint(rep.Result.Len())
			if !rep.Result.Equal(want) {
				outcome = "WRONG RESULT"
			}
			fallbacks := 0
			for _, n := range rep.Notes {
				if strings.HasPrefix(n, "degradation:") {
					fallbacks++
				}
			}
			name := s.String()
			if s == engine.StrategyAuto {
				name = fmt.Sprintf("auto (ran %s)", rep.Strategy)
			}
			t.AddRow(name, outcome, rep.Produced, result, fallbacks)
		case errors.Is(err, govern.ErrTupleBudget):
			var le *govern.LimitError
			produced := "—"
			if errors.As(err, &le) {
				produced = fmt.Sprint(le.Produced)
			}
			t.AddRow(s.String(), "aborted: tuple budget", produced, "—", "—")
		default:
			return nil, fmt.Errorf("EX6 %s: %w", s, err)
		}
	}
	t.AddNote("budgets count produced tuples only (the §2.3 generated relations); the inputs and the optimizer's planning work are bounded separately")
	t.AddNote("explicit strategies abort hard with govern.ErrTupleBudget; auto degrades along engine.DegradationLadder and records each fallback in Report.Notes")
	t.AddNote("the derived program's semijoins keep its intermediates under the budget that kills every classical route — Theorem 2's robustness, operationalized")
	return t, nil
}
