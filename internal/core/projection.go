package core

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/program"
	"repro/internal/relation"
)

// DeriveProjection extends Algorithm 2 to project-join queries in the sense
// of Yannakakis [13], which the paper cites as the acyclic-case antecedent:
// given a CPF tree over a connected scheme and an output attribute set out,
// it derives a program computing π_out(⋈D). The derived join program is
// followed by a single projection statement; Theorem 1 gives correctness
// and the projection adds at most |⋈D| tuples to the Theorem 2 cost, so the
// r(a+5) quasi-optimality factor grows by at most 1 (we report r(a+6)).
//
// out must be a subset of the scheme's attributes; the empty set yields the
// 0-ary boolean query "is ⋈D nonempty".
func DeriveProjection(t *jointree.Tree, h *hypergraph.Hypergraph, out relation.AttrSet) (*Derivation, error) {
	if !h.Attrs().ContainsAll(out) {
		return nil, fmt.Errorf("core: projection attributes %s not all in scheme %s", out, h)
	}
	d, err := Derive(t, h)
	if err != nil {
		return nil, err
	}
	if out.Equal(h.Attrs()) {
		return d, nil // projecting onto everything is the identity
	}
	p := d.Program
	head := "P"
	for taken := map[string]bool{}; ; {
		for _, in := range p.Inputs {
			taken[in] = true
		}
		for _, s := range p.Stmts {
			taken[s.Head] = true
		}
		if !taken[head] {
			break
		}
		head += "'"
	}
	p.Stmts = append(p.Stmts, program.Stmt{Op: program.OpProject, Head: head, Arg1: p.Output, Proj: out})
	p.Output = head
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: projected program fails validation: %v", err)
	}
	d.QuasiFactor = QuasiFactor(h.Len(), h.Attrs().Len()+1)
	return d, nil
}
