package core

import (
	"math/rand"
	"testing"

	"repro/internal/program"
	"repro/internal/relation"
)

func TestGeneratedSchemesExample6(t *testing.T) {
	h := paperScheme(t)
	d, err := Derive(figure2Tree(t, h), h)
	if err != nil {
		t.Fatal(err)
	}
	heads, result, err := GeneratedSchemes(d.Program, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(heads) != 10 {
		t.Fatalf("heads = %d, want 10", len(heads))
	}
	// The symbolic schemes must match Example 6's narration: V is ABC after
	// statement 1, ABCE after statement 6, ABCEFG after 7, ABCDEFGH at the
	// end.
	want := []string{
		"ABC", "C", "CDE", "CE", "CE", "ABCE", "ABCEFG", "ABCEFG", "ABCDEFG", "ABCDEFGH",
	}
	for i, w := range want {
		if heads[i].String() != w {
			t.Errorf("statement %d scheme = %s, want %s", i+1, heads[i], w)
		}
	}
	if !result.Equal(relation.AttrSetOfRunes("ABCDEFGH")) {
		t.Errorf("result scheme = %s", result)
	}
}

// TestTreeProjectionOnDerivedPrograms checks the §1 Goodman–Shmueli
// observation on programs Algorithm 2 derives: the inputs, the result, and
// some subset of the generated schemes always embed an acyclic scheme.
func TestTreeProjectionOnDerivedPrograms(t *testing.T) {
	h := paperScheme(t)
	d, err := Derive(figure2Tree(t, h), h)
	if err != nil {
		t.Fatal(err)
	}
	witness, ok, err := TreeProjection(d.Program, h, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no embedded acyclic scheme found for the Example 6 program")
	}
	t.Logf("witness subset: %v", witness)
}

func TestTreeProjectionRandomDerived(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	found := 0
	for trial := 0; trial < 25; trial++ {
		hg := randomConnectedScheme(rng, 2+rng.Intn(4), 3+rng.Intn(3), 3)
		tr := randomTree(rng, hg.Len())
		d, err := DeriveFromTree(tr, hg, RandomChoice{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		_, ok, err := TreeProjection(d.Program, hg, true)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !ok {
			t.Errorf("trial %d: no embedded acyclic scheme for derived program over %s", trial, hg)
			continue
		}
		found++
	}
	if found == 0 {
		t.Fatal("no successful trials")
	}
}

// TestTreeProjectionTrivialOnResult: for any program, adding the result
// relation ⋈D (whose scheme covers all attributes) makes the scheme
// acyclic, because a covering edge absorbs every cycle — the witness can
// therefore always be small. This documents why the check is about the
// EMBEDDED structure rather than a deep property; the interesting output is
// the witness itself.
func TestTreeProjectionTrivialOnResult(t *testing.T) {
	h := paperScheme(t)
	d, err := Derive(figure2Tree(t, h), h)
	if err != nil {
		t.Fatal(err)
	}
	witness, ok, err := TreeProjection(d.Program, h, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected a witness")
	}
	if len(witness) != 0 {
		t.Logf("minimal witness uses %d generated schemes: %v", len(witness), witness)
	}
}

func TestGeneratedSchemesErrors(t *testing.T) {
	h := paperScheme(t)
	bad := &program.Program{
		Inputs: []string{"ABC", "CDE", "EFG", "GHA"},
		Output: "ABC",
	}
	if _, _, err := GeneratedSchemes(bad, h); err != nil {
		t.Errorf("empty valid program rejected: %v", err)
	}
}
