package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/program"
	"repro/internal/relation"
)

// paperScheme is the running example's scheme {ABC, CDE, EFG, GHA}.
func paperScheme(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		t.Fatalf("ParseScheme: %v", err)
	}
	return h
}

// figure1Tree is (ABC ⋈ EFG) ⋈ (CDE ⋈ GHA).
func figure1Tree(t *testing.T, h *hypergraph.Hypergraph) *jointree.Tree {
	t.Helper()
	tr, err := jointree.Parse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return tr
}

// figure2Tree is ((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA.
func figure2Tree(t *testing.T, h *hypergraph.Hypergraph) *jointree.Tree {
	t.Helper()
	tr, err := jointree.Parse(h, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return tr
}

func TestCPFifyFigure1DefaultPolicy(t *testing.T) {
	h := paperScheme(t)
	t1 := figure1Tree(t, h)
	if t1.IsCPF(h) {
		t.Fatal("Figure 1 tree should not be CPF")
	}
	got, err := CPFify(t1, h, nil)
	if err != nil {
		t.Fatalf("CPFify: %v", err)
	}
	if err := got.Validate(h); err != nil {
		t.Fatalf("CPFify output invalid: %v", err)
	}
	if !got.IsCPF(h) {
		t.Fatalf("CPFify output is not CPF: %s", got.String(h))
	}
	// FirstChoice picks ABC first, then the lowest-index connectable
	// component at each step: CDE, then EFG, then GHA — exactly the choices
	// Example 5 makes, yielding the Figure 2 tree.
	want := figure2Tree(t, h)
	if !got.Equal(want) {
		t.Fatalf("CPFify = %s, want %s", got.String(h), want.String(h))
	}
}

// TestEnumerateCPFificationsSixteen reproduces Example 5's count: the
// Figure 1 tree admits exactly sixteen distinct CPF trees across all
// nondeterministic choices, one of which is the Figure 2 tree.
func TestEnumerateCPFificationsSixteen(t *testing.T) {
	h := paperScheme(t)
	t1 := figure1Tree(t, h)
	all, err := EnumerateCPFifications(t1, h, 0)
	if err != nil {
		t.Fatalf("EnumerateCPFifications: %v", err)
	}
	if len(all) != 16 {
		for _, tr := range all {
			t.Logf("  %s", tr.String(h))
		}
		t.Fatalf("got %d CPFifications, want 16 (Example 5)", len(all))
	}
	want := figure2Tree(t, h)
	found := false
	for _, tr := range all {
		if !tr.IsCPF(h) {
			t.Errorf("non-CPF tree in enumeration: %s", tr.String(h))
		}
		if err := tr.Validate(h); err != nil {
			t.Errorf("invalid tree in enumeration: %v", err)
		}
		if tr.Equal(want) {
			found = true
		}
	}
	if !found {
		t.Error("Figure 2 tree missing from the enumeration")
	}
}

// TestDeriveExample6Golden checks that Algorithm 2 applied to the Figure 2
// tree emits exactly the ten statements listed in Example 6, in order.
func TestDeriveExample6Golden(t *testing.T) {
	h := paperScheme(t)
	t2 := figure2Tree(t, h)
	d, err := Derive(t2, h)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	want := strings.TrimSpace(`
R(V) := R(ABC) ⋉ R(CDE)
R(F) := π_C R(V)
R(F) := R(F) ⋈ R(CDE)
R(F) := π_CE R(F)
R(F) := R(F) ⋉ R(EFG)
R(V) := R(V) ⋈ R(F)
R(V) := R(V) ⋈ R(EFG)
R(V) := R(V) ⋉ R(GHA)
R(V) := R(V) ⋈ R(CDE)
R(V) := R(V) ⋈ R(GHA)
`)
	if got := d.Program.String(); got != want {
		t.Errorf("derived program:\n%s\nwant:\n%s", got, want)
	}
	if d.Program.Len() >= d.QuasiFactor {
		t.Errorf("Claim C violated: %d statements, bound %d", d.Program.Len(), d.QuasiFactor)
	}
	if d.QuasiFactor != QuasiFactor(4, 8) {
		t.Errorf("QuasiFactor = %d, want %d", d.QuasiFactor, QuasiFactor(4, 8))
	}
}

// smallCycleDB builds a small database over the paper's scheme with the
// Example-3 structure: link attributes increment modulo m around the cycle,
// plus one distinguished closing tuple, so ⋈D has exactly one tuple.
func smallCycleDB(t *testing.T, m, p int64) *relation.Database {
	t.Helper()
	const bottom = int64(-1)
	mk := func(scheme string) *relation.Relation {
		return relation.New(relation.SchemaOfRunes(scheme))
	}
	r1, r2, r3, r4 := mk("ABC"), mk("CDE"), mk("EFG"), mk("GHA")
	for link := int64(0); link < m; link++ {
		next := (link + 1) % m
		for pay := int64(0); pay < p; pay++ {
			r1.MustInsert(relation.Ints(link, pay, next)) // A, B, C
			r2.MustInsert(relation.Ints(link, pay, next)) // C, D, E
			r3.MustInsert(relation.Ints(link, pay, next)) // E, F, G
			r4.MustInsert(relation.Ints(link, pay, next)) // G, H, A
		}
	}
	r1.MustInsert(relation.Ints(bottom, 0, bottom))
	r2.MustInsert(relation.Ints(bottom, 0, bottom))
	r3.MustInsert(relation.Ints(bottom, 0, bottom))
	r4.MustInsert(relation.Ints(bottom, 0, bottom))
	return relation.MustDatabase(r1, r2, r3, r4)
}

// TestTheorem1PaperExample runs the Example 6 program on an Example-3-style
// database and checks it computes ⋈D.
func TestTheorem1PaperExample(t *testing.T) {
	h := paperScheme(t)
	db := smallCycleDB(t, 3, 4)
	want := db.Join()
	if want.Len() != 1 {
		t.Fatalf("cycle database join has %d tuples, want 1", want.Len())
	}
	d, err := Derive(figure2Tree(t, h), h)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	res, err := d.Program.Apply(db)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !res.Output.Equal(want) {
		t.Errorf("program output != ⋈D:\n%s\nvs\n%s", res.Output, want)
	}
}

// TestTheorem2PaperExample checks the quasi-optimality bound on the paper's
// running example: deriving from the Figure 1 tree (the optimal one for the
// Example-3 data) yields a program whose cost is below r(a+5)·cost(T1(D)).
func TestTheorem2PaperExample(t *testing.T) {
	h := paperScheme(t)
	db := smallCycleDB(t, 3, 6)
	t1 := figure1Tree(t, h)
	t1Cost := t1.Cost(db)
	d, err := DeriveFromTree(t1, h, nil)
	if err != nil {
		t.Fatalf("DeriveFromTree: %v", err)
	}
	res, err := d.Program.Apply(db)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	bound := d.QuasiFactor * t1Cost
	if res.Cost >= bound {
		t.Errorf("cost(P(D)) = %d, want < r(a+5)·cost(T1(D)) = %d", res.Cost, bound)
	}
	if !res.Output.Equal(db.Join()) {
		t.Error("derived program output != ⋈D")
	}
}

// randomConnectedScheme generates a random connected scheme with r relations
// over attributes "A".."Z"-style names.
func randomConnectedScheme(rng *rand.Rand, r, attrs, maxArity int) *hypergraph.Hypergraph {
	names := make([]string, attrs)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	for {
		edges := make([]relation.AttrSet, r)
		for i := range edges {
			arity := 1 + rng.Intn(maxArity)
			picks := make([]string, arity)
			for j := range picks {
				picks[j] = names[rng.Intn(attrs)]
			}
			edges[i] = relation.NewAttrSet(picks...)
		}
		h, err := hypergraph.New(edges)
		if err != nil {
			continue
		}
		if h.Connected(h.Full()) {
			return h
		}
	}
}

// randomDatabase fills each relation of the scheme with size random tuples
// over a small integer domain (small domain forces plenty of join matches).
func randomDatabase(rng *rand.Rand, h *hypergraph.Hypergraph, size, domain int) *relation.Database {
	rels := make([]*relation.Relation, h.Len())
	for i := 0; i < h.Len(); i++ {
		schema := relation.MustSchema(h.Edge(i)...)
		rel := relation.New(schema)
		for k := 0; k < size; k++ {
			row := make(relation.Tuple, schema.Len())
			for c := range row {
				row[c] = relation.Int(int64(rng.Intn(domain)))
			}
			rel.MustInsert(row)
		}
		rels[i] = rel
	}
	return relation.MustDatabase(rels...)
}

// randomTree builds a random join expression tree exactly over the scheme.
func randomTree(rng *rand.Rand, n int) *jointree.Tree {
	nodes := make([]*jointree.Tree, n)
	for i := range nodes {
		nodes[i] = jointree.NewLeaf(i)
	}
	for len(nodes) > 1 {
		i := rng.Intn(len(nodes))
		a := nodes[i]
		nodes = append(nodes[:i], nodes[i+1:]...)
		j := rng.Intn(len(nodes))
		b := nodes[j]
		nodes[j] = jointree.NewJoin(a, b)
	}
	return nodes[0]
}

// TestTheorem1Randomized property-tests Theorem 1: for random connected
// schemes, random databases, and random (arbitrary) trees, the program
// derived via Algorithm 1 + Algorithm 2 computes ⋈D.
func TestTheorem1Randomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		r := 2 + rng.Intn(5)
		h := randomConnectedScheme(rng, r, 3+rng.Intn(4), 3)
		db := randomDatabase(rng, h, 1+rng.Intn(12), 3)
		tr := randomTree(rng, r)
		want := db.Join()

		d, err := DeriveFromTree(tr, h, RandomChoice{Rng: rng})
		if err != nil {
			t.Fatalf("trial %d: DeriveFromTree(%s over %s): %v", trial, tr.String(h), h, err)
		}
		res, err := d.Program.Apply(db)
		if err != nil {
			t.Fatalf("trial %d: Apply: %v\nprogram:\n%s", trial, err, d.Program)
		}
		if !res.Output.Equal(want) {
			t.Fatalf("trial %d: program output != ⋈D\nscheme %s\ntree %s\nprogram:\n%s\ngot %s\nwant %s",
				trial, h, tr.String(h), d.Program, res.Output, want)
		}
		if d.Program.Len() >= d.QuasiFactor {
			t.Errorf("trial %d: Claim C violated: %d statements ≥ bound %d", trial, d.Program.Len(), d.QuasiFactor)
		}
	}
}

// TestTheorem1ArbitraryCPFTrees property-tests Theorem 1 on CPF trees that
// did NOT come from Algorithm 1: Algorithm 2 must still be correct.
func TestTheorem1ArbitraryCPFTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		r := 2 + rng.Intn(4)
		h := randomConnectedScheme(rng, r, 3+rng.Intn(3), 3)
		trees, err := jointree.AllCPFTrees(h)
		if err != nil || len(trees) == 0 {
			continue
		}
		db := randomDatabase(rng, h, 1+rng.Intn(10), 3)
		want := db.Join()
		tr := trees[rng.Intn(len(trees))]
		d, err := Derive(tr, h)
		if err != nil {
			t.Fatalf("trial %d: Derive(%s over %s): %v", trial, tr.String(h), h, err)
		}
		res, err := d.Program.Apply(db)
		if err != nil {
			t.Fatalf("trial %d: Apply: %v\nprogram:\n%s", trial, err, d.Program)
		}
		if !res.Output.Equal(want) {
			t.Fatalf("trial %d: program output != ⋈D\nscheme %s\ntree %s\nprogram:\n%s",
				trial, h, tr.String(h), d.Program)
		}
	}
}

// TestTheorem2Randomized property-tests the Theorem 2 bound on nonempty
// joins: cost(P(D)) < r(a+5) · cost(T1(D)).
func TestTheorem2Randomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tested := 0
	for trial := 0; trial < 120 && tested < 50; trial++ {
		r := 2 + rng.Intn(5)
		h := randomConnectedScheme(rng, r, 3+rng.Intn(4), 3)
		db := randomDatabase(rng, h, 2+rng.Intn(10), 2)
		if db.Join().IsEmpty() {
			continue // Theorem 2 assumes ⋈D ≠ ∅
		}
		tested++
		tr := randomTree(rng, r)
		t1Cost := tr.Cost(db)
		d, err := DeriveFromTree(tr, h, RandomChoice{Rng: rng})
		if err != nil {
			t.Fatalf("trial %d: DeriveFromTree: %v", trial, err)
		}
		res, err := d.Program.Apply(db)
		if err != nil {
			t.Fatalf("trial %d: Apply: %v", trial, err)
		}
		if res.Cost >= d.QuasiFactor*t1Cost {
			t.Errorf("trial %d: cost(P(D)) = %d ≥ r(a+5)·cost(T1(D)) = %d·%d\nscheme %s\ntree %s\nprogram:\n%s",
				trial, res.Cost, d.QuasiFactor, t1Cost, h, tr.String(h), d.Program)
		}
	}
	if tested < 10 {
		t.Fatalf("only %d nonempty-join trials; generator too sparse", tested)
	}
}

// TestDeriveSingleRelation covers the degenerate scheme with one relation:
// the program is empty and the output is the input itself.
func TestDeriveSingleRelation(t *testing.T) {
	h := hypergraph.Must([]relation.AttrSet{relation.AttrSetOfRunes("AB")})
	tr := jointree.NewLeaf(0)
	d, err := Derive(tr, h)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if d.Program.Len() != 0 {
		t.Errorf("program has %d statements, want 0", d.Program.Len())
	}
	rel := relation.New(relation.SchemaOfRunes("AB"))
	rel.MustInsert(relation.Ints(1, 2))
	db := relation.MustDatabase(rel)
	res, err := d.Program.Apply(db)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !res.Output.Equal(rel) {
		t.Error("output != input for single-relation scheme")
	}
	if res.Cost != 1 {
		t.Errorf("cost = %d, want 1", res.Cost)
	}
}

// TestDeriveRejectsNonCPF checks Algorithm 2 refuses non-CPF input.
func TestDeriveRejectsNonCPF(t *testing.T) {
	h := paperScheme(t)
	if _, err := Derive(figure1Tree(t, h), h); err == nil {
		t.Fatal("Derive accepted a non-CPF tree")
	}
}

// TestCPFifyRejectsDisconnected checks Algorithm 1 refuses disconnected
// schemes.
func TestCPFifyRejectsDisconnected(t *testing.T) {
	h := hypergraph.Must([]relation.AttrSet{
		relation.AttrSetOfRunes("AB"),
		relation.AttrSetOfRunes("CD"),
	})
	tr := jointree.NewJoin(jointree.NewLeaf(0), jointree.NewLeaf(1))
	if _, err := CPFify(tr, h, nil); err == nil {
		t.Fatal("CPFify accepted a disconnected scheme")
	}
}

// TestCPFifyIdempotentOnCPF checks that a CPF tree passes through CPFify as
// a CPF tree of the same cost structure (the algorithm may restructure, but
// the result must remain CPF and exactly over the scheme).
func TestCPFifyIdempotentOnCPF(t *testing.T) {
	h := paperScheme(t)
	t2 := figure2Tree(t, h)
	got, err := CPFify(t2, h, nil)
	if err != nil {
		t.Fatalf("CPFify: %v", err)
	}
	if !got.IsCPF(h) {
		t.Fatal("output not CPF")
	}
	if err := got.Validate(h); err != nil {
		t.Fatal(err)
	}
}

// TestDerivedProgramValidates checks the derived program passes the IR
// validator for a variety of CPF trees.
func TestDerivedProgramValidates(t *testing.T) {
	h := paperScheme(t)
	trees, err := jointree.AllCPFTrees(h)
	if err != nil {
		t.Fatalf("AllCPFTrees: %v", err)
	}
	if len(trees) == 0 {
		t.Fatal("no CPF trees over the paper scheme")
	}
	for _, tr := range trees {
		d, err := Derive(tr, h)
		if err != nil {
			t.Fatalf("Derive(%s): %v", tr.String(h), err)
		}
		if err := d.Program.Validate(); err != nil {
			t.Errorf("Derive(%s): invalid program: %v", tr.String(h), err)
		}
	}
}

// TestAllCPFDerivationsCorrect runs every CPF tree over the paper scheme
// through Algorithm 2 and checks correctness on the cycle database.
func TestAllCPFDerivationsCorrect(t *testing.T) {
	h := paperScheme(t)
	db := smallCycleDB(t, 3, 3)
	want := db.Join()
	trees, err := jointree.AllCPFTrees(h)
	if err != nil {
		t.Fatalf("AllCPFTrees: %v", err)
	}
	for _, tr := range trees {
		d, err := Derive(tr, h)
		if err != nil {
			t.Fatalf("Derive(%s): %v", tr.String(h), err)
		}
		res, err := d.Program.Apply(db)
		if err != nil {
			t.Fatalf("Apply(%s): %v", tr.String(h), err)
		}
		if !res.Output.Equal(want) {
			t.Errorf("Derive(%s): wrong output", tr.String(h))
		}
	}
}

// TestProgramOnEmptyJoin: Theorem 1 makes no ⋈D ≠ ∅ assumption; the program
// must compute the empty join correctly.
func TestProgramOnEmptyJoin(t *testing.T) {
	h := paperScheme(t)
	// Build a database whose cycle never closes: links increment mod 3 with
	// no closing tuple.
	mk := func(scheme string) *relation.Relation {
		return relation.New(relation.SchemaOfRunes(scheme))
	}
	r1, r2, r3, r4 := mk("ABC"), mk("CDE"), mk("EFG"), mk("GHA")
	for link := int64(0); link < 3; link++ {
		next := (link + 1) % 3
		r1.MustInsert(relation.Ints(link, 0, next))
		r2.MustInsert(relation.Ints(link, 0, next))
		r3.MustInsert(relation.Ints(link, 0, next))
		r4.MustInsert(relation.Ints(link, 0, next))
	}
	db := relation.MustDatabase(r1, r2, r3, r4)
	if !db.Join().IsEmpty() {
		t.Fatal("expected empty join")
	}
	d, err := Derive(figure2Tree(t, h), h)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	res, err := d.Program.Apply(db)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !res.Output.IsEmpty() {
		t.Errorf("program output has %d tuples, want 0", res.Output.Len())
	}
}

// TestEnumerateMatchesSingleRuns: every tree produced by CPFify under any
// random policy must be in the exhaustive enumeration.
func TestEnumerateMatchesSingleRuns(t *testing.T) {
	h := paperScheme(t)
	t1 := figure1Tree(t, h)
	all, err := EnumerateCPFifications(t1, h, 0)
	if err != nil {
		t.Fatalf("EnumerateCPFifications: %v", err)
	}
	keys := make(map[string]bool, len(all))
	for _, tr := range all {
		keys[tr.Canon()] = true
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		got, err := CPFify(t1, h, RandomChoice{Rng: rng})
		if err != nil {
			t.Fatalf("CPFify: %v", err)
		}
		if !keys[got.Canon()] {
			t.Errorf("random CPFify produced a tree outside the enumeration: %s", got.String(h))
		}
	}
}

// TestDerivationStatementKinds sanity-checks the derived statements only use
// the three operators and that semijoins only ever reduce (never enlarge)
// the head, by running the Example 6 program and checking the trace.
func TestDerivationStatementKinds(t *testing.T) {
	h := paperScheme(t)
	db := smallCycleDB(t, 3, 4)
	d, err := Derive(figure2Tree(t, h), h)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	res, err := d.Program.Apply(db)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for _, step := range res.Trace {
		switch step.Stmt.Op {
		case program.OpProject, program.OpJoin, program.OpSemijoin:
		default:
			t.Errorf("unexpected operator in %s", step.Stmt)
		}
	}
}

// TestChoicePolicies exercises the two built-in policies directly.
func TestChoicePolicies(t *testing.T) {
	masks := []hypergraph.Mask{hypergraph.MaskOf(2), hypergraph.MaskOf(0), hypergraph.MaskOf(1)}
	fc := FirstChoice{}
	if got := fc.PickInitial(masks); got != 1 {
		t.Errorf("FirstChoice.PickInitial = %d, want 1 (lowest mask)", got)
	}
	if got := fc.PickNext(hypergraph.MaskOf(0), masks); got != 1 {
		t.Errorf("FirstChoice.PickNext = %d, want 1", got)
	}
	rc := RandomChoice{Rng: rand.New(rand.NewSource(1))}
	for i := 0; i < 20; i++ {
		if got := rc.PickInitial(masks); got < 0 || got >= len(masks) {
			t.Fatalf("RandomChoice.PickInitial out of range: %d", got)
		}
		if got := rc.PickNext(hypergraph.MaskOf(0), masks); got < 0 || got >= len(masks) {
			t.Fatalf("RandomChoice.PickNext out of range: %d", got)
		}
	}
}

// TestCPFifyDeterministicWithFirstChoice: the default policy makes CPFify a
// pure function.
func TestCPFifyDeterministicWithFirstChoice(t *testing.T) {
	h := paperScheme(t)
	t1 := figure1Tree(t, h)
	a, err := CPFify(t1, h, FirstChoice{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, err := CPFify(t1, h, FirstChoice{})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatal("FirstChoice CPFify not deterministic")
		}
	}
}
