package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/workload"
)

// ExampleCPFify runs Algorithm 1 on the paper's Figure 1 tree.
func ExampleCPFify() {
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		log.Fatal(err)
	}
	t1 := jointree.MustParse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	t2, err := core.CPFify(t1, h, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t2.String(h))
	// Output:
	// ((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA
}

// ExampleDerive reproduces the paper's Example 6 program.
func ExampleDerive() {
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		log.Fatal(err)
	}
	t2 := jointree.MustParse(h, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA")
	d, err := core.Derive(t2, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Program)
	// Output:
	// R(V) := R(ABC) ⋉ R(CDE)
	// R(F) := π_C R(V)
	// R(F) := R(F) ⋈ R(CDE)
	// R(F) := π_CE R(F)
	// R(F) := R(F) ⋉ R(EFG)
	// R(V) := R(V) ⋈ R(F)
	// R(V) := R(V) ⋈ R(EFG)
	// R(V) := R(V) ⋉ R(GHA)
	// R(V) := R(V) ⋈ R(CDE)
	// R(V) := R(V) ⋈ R(GHA)
}

// ExampleDeriveFromTree shows the end-to-end quasi-optimality pipeline on
// the Example 3 family.
func ExampleDeriveFromTree() {
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		log.Fatal(err)
	}
	spec, err := workload.Example3(10)
	if err != nil {
		log.Fatal(err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		log.Fatal(err)
	}
	optimal := jointree.MustParse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	d, err := core.DeriveFromTree(optimal, h, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := d.Program.Apply(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal expression cost: %d\n", optimal.Cost(db))
	fmt.Printf("derived program cost:    %d\n", res.Cost)
	fmt.Printf("|⋈D| = %d, bound factor r(a+5) = %d\n", res.Output.Len(), d.QuasiFactor)
	// Output:
	// optimal expression cost: 22427
	// derived program cost:    8330
	// |⋈D| = 1, bound factor r(a+5) = 52
}

// ExampleEnumerateCPFifications counts Example 5's sixteen trees.
func ExampleEnumerateCPFifications() {
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		log.Fatal(err)
	}
	t1 := jointree.MustParse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	all, err := core.EnumerateCPFifications(t1, h, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(all), "distinct CPF trees")
	// Output:
	// 16 distinct CPF trees
}
