package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
)

func TestBestProgramFromTreeBeatsBound(t *testing.T) {
	h := paperScheme(t)
	db := smallCycleDB(t, 3, 6)
	t1 := figure1Tree(t, h)
	t1Cost := t1.Cost(db)
	best, err := BestProgramFromTree(t1, h, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	qf := QuasiFactor(h.Len(), h.Attrs().Len())
	if best.Cost >= qf*t1Cost {
		t.Errorf("best program cost %d ≥ bound %d", best.Cost, qf*t1Cost)
	}
	if best.Tree == nil || best.Program == nil {
		t.Fatal("missing plan parts")
	}
	if !best.Tree.IsCPF(h) {
		t.Error("best plan's tree is not CPF")
	}
}

// TestHeadlineClaimByExhaustion verifies the paper's main statement on
// random instances by full enumeration: among ALL CPF join expressions there
// exists one whose derived program costs < r(a+5) × the optimal expression
// cost.
func TestHeadlineClaimByExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	checked := 0
	for trial := 0; trial < 60 && checked < 20; trial++ {
		h := randomConnectedScheme(rng, 2+rng.Intn(3), 3+rng.Intn(3), 3)
		db := randomDatabase(rng, h, 2+rng.Intn(8), 2)
		if db.Join().IsEmpty() {
			continue // Theorem 2's hypothesis
		}
		// Optimal expression cost by enumeration.
		trees, err := jointree.AllTrees(h)
		if err != nil {
			continue
		}
		optCost := int(^uint(0) >> 1)
		for _, tr := range trees {
			if c := tr.Cost(db); c < optCost {
				optCost = c
			}
		}
		best, err := BestProgramOverAllCPFTrees(h, db)
		if err != nil {
			continue // disconnected-CPF edge cases etc.
		}
		checked++
		qf := QuasiFactor(h.Len(), h.Attrs().Len())
		if best.Cost >= qf*optCost {
			t.Errorf("trial %d: no CPF tree yields a quasi-optimal program on %s (best %d, bound %d)",
				trial, h, best.Cost, qf*optCost)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked", checked)
	}
}

func TestBestProgramOverAllCPFTreesDisconnected(t *testing.T) {
	h, err := hypergraphParse("AB CD")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	db := randomDatabase(rng, h, 3, 2)
	if _, err := BestProgramOverAllCPFTrees(h, db); err == nil {
		t.Error("disconnected scheme accepted")
	}
}

// TestQuasiFactorQuick property-checks the bound arithmetic.
func TestQuasiFactorQuick(t *testing.T) {
	f := func(r, a uint8) bool {
		rr, aa := int(r%20)+1, int(a%30)+1
		return QuasiFactor(rr, aa) == rr*(aa+5) && QuasiFactor(rr, aa) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// hypergraphParse is a tiny local alias to keep the test imports tidy.
func hypergraphParse(s string) (*hypergraph.Hypergraph, error) {
	return hypergraph.ParseScheme(s)
}
