// Package core implements the paper's two algorithms and their composition:
//
//   - Algorithm 1 (CPFify) turns an arbitrary join expression tree over a
//     connected database scheme into a Cartesian-product-free tree, working
//     bottom-up over the connected components of every node.
//   - Algorithm 2 (Derive) turns any CPF join expression tree into a program
//     of joins, semijoins, and projections that computes ⋈D (Theorem 1);
//     when the CPF tree came from Algorithm 1 applied to a tree T1, the
//     program's cost is < r(a+5) · cost(T1(D)) whenever ⋈D ≠ ∅ (Theorem 2).
//
// Algorithm 1's Steps 1 and 3 choose freely among several candidates; the
// choice is a first-class ChoicePolicy here, and EnumerateCPFifications
// explores every choice (Example 5's sixteen trees).
package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
)

// ChoicePolicy resolves the nondeterministic choices in Algorithm 1.
// Candidates are connected component masks; both methods return an index
// into the candidate slice.
type ChoicePolicy interface {
	// PickInitial chooses the starting scheme 𝒳 among the members of Γ
	// (Step 1).
	PickInitial(gamma []hypergraph.Mask) int
	// PickNext chooses the next scheme 𝒲 among the members of Γ whose
	// union with the current 𝒳 is connected (Step 3). x is the current 𝒳.
	PickNext(x hypergraph.Mask, eligible []hypergraph.Mask) int
}

// FirstChoice deterministically picks the candidate containing the lowest
// relation index. It makes CPFify a pure function of its inputs.
type FirstChoice struct{}

// PickInitial implements ChoicePolicy.
func (FirstChoice) PickInitial(gamma []hypergraph.Mask) int { return lowestMaskIndex(gamma) }

// PickNext implements ChoicePolicy.
func (FirstChoice) PickNext(_ hypergraph.Mask, eligible []hypergraph.Mask) int {
	return lowestMaskIndex(eligible)
}

func lowestMaskIndex(ms []hypergraph.Mask) int {
	best := 0
	for i := 1; i < len(ms); i++ {
		if ms[i] < ms[best] {
			best = i
		}
	}
	return best
}

// RandomChoice picks uniformly at random using the given source; useful for
// sampling the space of CPFifications.
type RandomChoice struct{ Rng *rand.Rand }

// PickInitial implements ChoicePolicy.
func (c RandomChoice) PickInitial(gamma []hypergraph.Mask) int { return c.Rng.Intn(len(gamma)) }

// PickNext implements ChoicePolicy.
func (c RandomChoice) PickNext(_ hypergraph.Mask, eligible []hypergraph.Mask) int {
	return c.Rng.Intn(len(eligible))
}

// CPFify runs Algorithm 1: given a join expression tree t exactly over the
// scheme of h, which must be connected, it returns a CPF join expression
// tree over the same scheme. The choice policy resolves Steps 1 and 3; nil
// means FirstChoice.
func CPFify(t *jointree.Tree, h *hypergraph.Hypergraph, policy ChoicePolicy) (*jointree.Tree, error) {
	if policy == nil {
		policy = FirstChoice{}
	}
	if err := t.Validate(h); err != nil {
		return nil, err
	}
	if !h.Connected(h.Full()) {
		return nil, fmt.Errorf("core: Algorithm 1 requires a connected database scheme, got %s", h)
	}
	table := make(map[hypergraph.Mask]*jointree.Tree)
	if err := cpfifyNode(t, h, policy, table); err != nil {
		return nil, err
	}
	out, ok := table[h.Full()]
	if !ok {
		return nil, fmt.Errorf("core: internal error: no CPF tree registered for the root scheme")
	}
	return out, nil
}

// cpfifyNode processes t's nodes in postorder, maintaining the table of CPF
// trees per connected component, exactly as Algorithm 1 prescribes.
func cpfifyNode(t *jointree.Tree, h *hypergraph.Hypergraph, policy ChoicePolicy, table map[hypergraph.Mask]*jointree.Tree) error {
	if t.IsLeaf() {
		table[t.Mask()] = jointree.NewLeaf(t.Leaf)
		return nil
	}
	if err := cpfifyNode(t.Left, h, policy, table); err != nil {
		return err
	}
	if err := cpfifyNode(t.Right, h, policy, table); err != nil {
		return err
	}
	u := t.Mask()
	for _, comp := range h.Components(u) {
		if _, done := table[comp]; done {
			continue
		}
		gamma := gammaOf(h, t.Left.Mask(), t.Right.Mask(), comp)
		tree, err := mergeGamma(h, policy, table, gamma)
		if err != nil {
			return err
		}
		table[comp] = tree
	}
	return nil
}

// gammaOf returns Γ: the components of 𝓛 and the components of 𝓡 whose
// union is the component comp of 𝒰. Each component of a child is either
// contained in comp or disjoint from it.
func gammaOf(h *hypergraph.Hypergraph, left, right, comp hypergraph.Mask) []hypergraph.Mask {
	var gamma []hypergraph.Mask
	for _, c := range h.Components(left) {
		if c&comp != 0 {
			gamma = append(gamma, c)
		}
	}
	for _, c := range h.Components(right) {
		if c&comp != 0 {
			gamma = append(gamma, c)
		}
	}
	return gamma
}

// mergeGamma performs Steps 1–5: starting from a chosen element of Γ, it
// repeatedly joins in an element whose union with the accumulated scheme is
// connected, building a CPF tree over ∪Γ.
func mergeGamma(h *hypergraph.Hypergraph, policy ChoicePolicy, table map[hypergraph.Mask]*jointree.Tree, gamma []hypergraph.Mask) (*jointree.Tree, error) {
	remaining := append([]hypergraph.Mask(nil), gamma...)
	pick := policy.PickInitial(remaining)
	x := remaining[pick]
	tree, ok := table[x]
	if !ok {
		return nil, fmt.Errorf("core: internal error: component %s missing from table", x)
	}
	remaining = append(remaining[:pick], remaining[pick+1:]...)
	for len(remaining) > 0 {
		var eligible []int
		for i, w := range remaining {
			// 𝒳 ∪ 𝒲 is connected iff the two connected schemes share an
			// attribute.
			if h.Overlapping(x, w) {
				eligible = append(eligible, i)
			}
		}
		if len(eligible) == 0 {
			return nil, fmt.Errorf("core: internal error: no connectable scheme in Γ (scheme not connected?)")
		}
		masks := make([]hypergraph.Mask, len(eligible))
		for i, e := range eligible {
			masks[i] = remaining[e]
		}
		chosen := eligible[policy.PickNext(x, masks)]
		w := remaining[chosen]
		wTree, ok := table[w]
		if !ok {
			return nil, fmt.Errorf("core: internal error: component %s missing from table", w)
		}
		tree = jointree.NewJoin(tree, wTree)
		x |= w
		remaining = append(remaining[:chosen], remaining[chosen+1:]...)
	}
	return tree, nil
}

// EnumerateCPFifications explores every resolution of Algorithm 1's
// nondeterministic choices on tree t and returns the distinct CPF trees it
// can produce, in a deterministic order. limit bounds the number of distinct
// trees (0 means jointree.EnumerationLimit).
func EnumerateCPFifications(t *jointree.Tree, h *hypergraph.Hypergraph, limit int) ([]*jointree.Tree, error) {
	if limit <= 0 {
		limit = jointree.EnumerationLimit
	}
	if err := t.Validate(h); err != nil {
		return nil, err
	}
	if !h.Connected(h.Full()) {
		return nil, fmt.Errorf("core: Algorithm 1 requires a connected database scheme, got %s", h)
	}
	seen := make(map[string]*jointree.Tree)
	err := enumCPF(t, h, make(map[hypergraph.Mask]*jointree.Tree), func(table map[hypergraph.Mask]*jointree.Tree) error {
		out := table[h.Full()]
		key := out.Canon()
		if _, dup := seen[key]; !dup {
			if len(seen) >= limit {
				return jointree.ErrTooMany
			}
			seen[key] = out
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*jointree.Tree, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out, nil
}

// enumCPF is the branching analogue of cpfifyNode: it processes the nodes of
// t in postorder and, for each component needing Steps 1–5, branches over
// every initial and every next choice, invoking done with the completed
// table for each full resolution.
func enumCPF(t *jointree.Tree, h *hypergraph.Hypergraph, table map[hypergraph.Mask]*jointree.Tree, done func(map[hypergraph.Mask]*jointree.Tree) error) error {
	// Collect the internal nodes in postorder; leaves seed the table.
	var nodes []*jointree.Tree
	var collect func(n *jointree.Tree)
	collect = func(n *jointree.Tree) {
		if n.IsLeaf() {
			table[n.Mask()] = jointree.NewLeaf(n.Leaf)
			return
		}
		collect(n.Left)
		collect(n.Right)
		nodes = append(nodes, n)
	}
	collect(t)
	return enumNodes(nodes, 0, h, table, done)
}

// enumNodes handles node i onward; each node may introduce several
// components, each with its own choice branching.
func enumNodes(nodes []*jointree.Tree, i int, h *hypergraph.Hypergraph, table map[hypergraph.Mask]*jointree.Tree, done func(map[hypergraph.Mask]*jointree.Tree) error) error {
	if i == len(nodes) {
		return done(table)
	}
	n := nodes[i]
	var pending [][]hypergraph.Mask // Γ for each component needing construction
	var comps []hypergraph.Mask
	for _, comp := range h.Components(n.Mask()) {
		if _, ok := table[comp]; ok {
			continue
		}
		comps = append(comps, comp)
		pending = append(pending, gammaOf(h, n.Left.Mask(), n.Right.Mask(), comp))
	}
	return enumComponents(nodes, i, comps, pending, 0, h, table, done)
}

// enumComponents branches over the Γ-merge of component j at node i, then
// recurses into the next component or node. Table entries added for a branch
// are removed on backtrack.
func enumComponents(nodes []*jointree.Tree, i int, comps []hypergraph.Mask, pending [][]hypergraph.Mask, j int, h *hypergraph.Hypergraph, table map[hypergraph.Mask]*jointree.Tree, done func(map[hypergraph.Mask]*jointree.Tree) error) error {
	if j == len(comps) {
		return enumNodes(nodes, i+1, h, table, done)
	}
	gamma := pending[j]
	var rec func(x hypergraph.Mask, tree *jointree.Tree, remaining []hypergraph.Mask) error
	rec = func(x hypergraph.Mask, tree *jointree.Tree, remaining []hypergraph.Mask) error {
		if len(remaining) == 0 {
			table[comps[j]] = tree
			err := enumComponents(nodes, i, comps, pending, j+1, h, table, done)
			delete(table, comps[j])
			return err
		}
		for k, w := range remaining {
			if !h.Overlapping(x, w) {
				continue
			}
			rest := make([]hypergraph.Mask, 0, len(remaining)-1)
			rest = append(rest, remaining[:k]...)
			rest = append(rest, remaining[k+1:]...)
			if err := rec(x|w, jointree.NewJoin(tree, table[w]), rest); err != nil {
				return err
			}
		}
		return nil
	}
	for k, x := range gamma {
		rest := make([]hypergraph.Mask, 0, len(gamma)-1)
		rest = append(rest, gamma[:k]...)
		rest = append(rest, gamma[k+1:]...)
		if err := rec(x, table[x], rest); err != nil {
			return err
		}
	}
	return nil
}
