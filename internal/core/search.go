package core

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/program"
	"repro/internal/relation"
)

// ProgramPlan pairs a CPF join expression tree with the program Algorithm 2
// derives from it and the program's measured cost on a database.
type ProgramPlan struct {
	Tree    *jointree.Tree
	Program *program.Program
	Cost    int
}

// BestProgramFromTree explores every CPF tree Algorithm 1 can produce from
// t (across its nondeterministic choices), derives a program from each, runs
// it on db, and returns the cheapest. This realizes the paper's main
// statement constructively: among the CPF expressions reachable from an
// optimal t, one yields a quasi-optimal program — and this function finds
// the best of them.
func BestProgramFromTree(t *jointree.Tree, h *hypergraph.Hypergraph, db *relation.Database, limit int) (ProgramPlan, error) {
	trees, err := EnumerateCPFifications(t, h, limit)
	if err != nil {
		return ProgramPlan{}, err
	}
	return bestOver(trees, h, db)
}

// BestProgramOverAllCPFTrees derives a program from every CPF tree exactly
// over the scheme and returns the cheapest on db. Exponential in the scheme
// size; intended for small schemes and for the experiments that verify the
// paper's existence claim by exhaustion.
func BestProgramOverAllCPFTrees(h *hypergraph.Hypergraph, db *relation.Database) (ProgramPlan, error) {
	trees, err := jointree.AllCPFTrees(h)
	if err != nil {
		return ProgramPlan{}, err
	}
	if len(trees) == 0 {
		return ProgramPlan{}, fmt.Errorf("core: scheme %s has no CPF trees", h)
	}
	return bestOver(trees, h, db)
}

// bestOver derives and runs a program for each tree and keeps the cheapest.
func bestOver(trees []*jointree.Tree, h *hypergraph.Hypergraph, db *relation.Database) (ProgramPlan, error) {
	if len(trees) == 0 {
		return ProgramPlan{}, fmt.Errorf("core: no candidate CPF trees")
	}
	want := db.Join()
	best := ProgramPlan{Cost: int(^uint(0) >> 1)}
	for _, tr := range trees {
		d, err := Derive(tr, h)
		if err != nil {
			return ProgramPlan{}, err
		}
		res, err := d.Program.Apply(db)
		if err != nil {
			return ProgramPlan{}, err
		}
		if !res.Output.Equal(want) {
			return ProgramPlan{}, fmt.Errorf("core: derived program computed the wrong join for %s", tr.String(h))
		}
		if res.Cost < best.Cost {
			best = ProgramPlan{Tree: tr, Program: d.Program, Cost: res.Cost}
		}
	}
	return best, nil
}
