package core

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/program"
	"repro/internal/relation"
)

// Derivation is the output of Algorithm 2: the program plus bookkeeping
// useful for inspection and for checking the paper's bounds.
type Derivation struct {
	// Program computes ⋈D when applied to any database over the scheme
	// (Theorem 1).
	Program *program.Program
	// Tree is the CPF join expression tree the program was derived from.
	Tree *jointree.Tree
	// Scheme is the database scheme the derivation ran over.
	Scheme *hypergraph.Hypergraph
	// Annotations records, per statement, the node subset 𝒱ᵢ from the
	// Theorem 1 proof whose partial join the statement's head projects:
	// after statement k, R(head) = π_schema(⋈D[Annotations[k]]). These are
	// the proof's intermediate claims, checkable with VerifyInvariants.
	Annotations []hypergraph.Mask
	// QuasiFactor is r(a+5) for the scheme, the Theorem 2 cost factor and
	// the Claim C statement-count bound.
	QuasiFactor int
}

// QuasiFactor returns r(a+5) for a scheme with r relation scheme occurrences
// and a attributes — the data-independent factor of Theorem 2.
func QuasiFactor(r, a int) int { return r * (a + 5) }

// Derive runs Algorithm 2 on a CPF join expression tree t exactly over the
// scheme of h, which must be connected. The returned program, applied to any
// database over the scheme, computes ⋈D in its output relation.
func Derive(t *jointree.Tree, h *hypergraph.Hypergraph) (*Derivation, error) {
	if err := t.Validate(h); err != nil {
		return nil, err
	}
	if !h.Connected(h.Full()) {
		return nil, fmt.Errorf("core: Algorithm 2 requires a connected database scheme, got %s", h)
	}
	if !t.IsCPF(h) {
		return nil, fmt.Errorf("core: Algorithm 2 requires a Cartesian-product-free tree, got %s", t.String(h))
	}

	d := &deriver{
		h:      h,
		names:  jointree.SchemeNames(h),
		attach: make(map[*jointree.Tree]string),
	}
	d.prog = &program.Program{Inputs: d.names}

	// "First visit all leaves": attach the input name to every leaf.
	var attachLeaves func(n *jointree.Tree)
	attachLeaves = func(n *jointree.Tree) {
		if n.IsLeaf() {
			d.attach[n] = d.names[n.Leaf]
			return
		}
		attachLeaves(n.Left)
		attachLeaves(n.Right)
	}
	attachLeaves(t)

	// S is the root plus every internal node that is the right child of its
	// parent; visit S bottom-up (postorder reaches children before parents).
	var visit func(n *jointree.Tree, isRoot, isRightChild bool)
	visit = func(n *jointree.Tree, isRoot, isRightChild bool) {
		if n.IsLeaf() {
			return
		}
		visit(n.Left, false, false)
		visit(n.Right, false, true)
		if isRoot || isRightChild {
			d.processSpine(n)
		}
	}
	visit(t, true, false)

	// The output is the relation attached to the root. For a single-leaf
	// tree the program is empty and the output is that input.
	d.prog.Output = d.attach[t]
	if err := d.prog.Validate(); err != nil {
		return nil, fmt.Errorf("core: derived program fails validation: %v", err)
	}
	return &Derivation{
		Program:     d.prog,
		Tree:        t,
		Scheme:      h,
		Annotations: d.annots,
		QuasiFactor: QuasiFactor(h.Len(), h.Attrs().Len()),
	}, nil
}

// deriver carries Algorithm 2's state.
type deriver struct {
	h     *hypergraph.Hypergraph
	names []string
	prog  *program.Program
	// annots parallels prog.Stmts; see Derivation.Annotations.
	annots []hypergraph.Mask
	// attach maps a visited node 𝒱 to the name of the relation R(V)
	// holding ⋈D[𝒱] after the program runs.
	attach map[*jointree.Tree]string
	nextV  int
	nextF  int
}

func (d *deriver) freshV() string {
	d.nextV++
	if d.nextV == 1 {
		return "V"
	}
	return fmt.Sprintf("V%d", d.nextV)
}

func (d *deriver) freshF() string {
	d.nextF++
	if d.nextF == 1 {
		return "F"
	}
	return fmt.Sprintf("F%d", d.nextF)
}

// processSpine performs Steps 1–18 for a node 𝒱 in S: walk from 𝒱 down left
// children to the leaf 𝒱₀, with 𝒲ᵢ the right child of 𝒱ᵢ, and emit the
// statements that compute ⋈D[𝒱] into a fresh variable, which is then
// attached to 𝒱.
func (d *deriver) processSpine(v *jointree.Tree) {
	// Collect the left spine 𝒱₀, 𝒱₁, …, 𝒱ₙ = 𝒱 and the right children 𝒲ᵢ.
	var spine []*jointree.Tree
	for n := v; ; n = n.Left {
		spine = append(spine, n)
		if n.IsLeaf() {
			break
		}
	}
	// spine currently runs 𝒱ₙ … 𝒱₀; reverse it.
	for i, j := 0, len(spine)-1; i < j; i, j = i+1, j-1 {
		spine[i], spine[j] = spine[j], spine[i]
	}
	n := len(spine) - 1
	w := make([]*jointree.Tree, n+1) // w[i] = 𝒲ᵢ, 1 ≤ i ≤ n
	wAttrs := make([]relation.AttrSet, n+1)
	for i := 1; i <= n; i++ {
		w[i] = spine[i].Right
		wAttrs[i] = d.h.AttrsOf(w[i].Mask())
	}

	// Step 1: create V and "set R(V) to R(V₀)". The paper treats this as an
	// aliasing step, not a statement; we emit no statement and instead let
	// the first assignment into V read from 𝒱₀'s relation.
	vName := d.freshV()
	cur := d.attach[spine[0]] // the name V currently aliases
	vAttrs := d.h.AttrsOf(spine[0].Mask())

	// emit appends a statement whose head is V; the first such statement
	// reads through the alias. The annotation is the proof's 𝒱ᵢ mask for
	// the statement (see Derivation.Annotations).
	emitJoinV := func(arg string, annot hypergraph.Mask) {
		d.prog.Stmts = append(d.prog.Stmts, program.Stmt{Op: program.OpJoin, Head: vName, Arg1: cur, Arg2: arg})
		d.annots = append(d.annots, annot)
		cur = vName
	}
	emitSemijoinV := func(arg string, annot hypergraph.Mask) {
		d.prog.Stmts = append(d.prog.Stmts, program.Stmt{Op: program.OpSemijoin, Head: vName, Arg1: cur, Arg2: arg})
		d.annots = append(d.annots, annot)
		cur = vName
	}

	// Steps 2–16: the outer for-loop over i = 1 … n.
	for i := 1; i <= n; i++ {
		// Step 3: 𝓕 = { 𝐖ⱼ | 1 ≤ j < i, 𝐖ⱼ ∩ 𝐖ᵢ ⊄ 𝐕 }.
		var f []int
		for j := 1; j < i; j++ {
			if !vAttrs.ContainsAll(wAttrs[j].Intersect(wAttrs[i])) {
				f = append(f, j)
			}
		}
		if vAttrs.Overlaps(wAttrs[i]) {
			// Steps 5–6: throughout Step 5, R(V) = π_V(⋈D[𝒱ᵢ₋₁]); after
			// Step 6, R(V) = π_V(⋈D[𝒱ᵢ]).
			for _, j := range f {
				emitJoinV(d.attach[w[j]], spine[i-1].Mask())
				vAttrs = vAttrs.Union(wAttrs[j])
			}
			emitSemijoinV(d.attach[w[i]], spine[i].Mask())
		} else {
			// Steps 9–14.
			fName := d.freshF()
			var unionF relation.AttrSet
			for _, j := range f {
				unionF = unionF.Union(wAttrs[j])
			}
			// Step 10: R(F) := π_{(∪𝓕)∩𝐕} R(V); the proof: R(F) =
			// π_F(⋈D[𝒱ᵢ₋₁]) throughout Steps 10–12.
			d.prog.Stmts = append(d.prog.Stmts, program.Stmt{
				Op: program.OpProject, Head: fName, Arg1: cur, Proj: unionF.Intersect(vAttrs),
			})
			d.annots = append(d.annots, spine[i-1].Mask())
			fAttrs := unionF.Intersect(vAttrs)
			// Step 11: join each member of 𝓕 into F.
			for _, j := range f {
				d.prog.Stmts = append(d.prog.Stmts, program.Stmt{
					Op: program.OpJoin, Head: fName, Arg1: fName, Arg2: d.attach[w[j]],
				})
				d.annots = append(d.annots, spine[i-1].Mask())
				fAttrs = fAttrs.Union(wAttrs[j])
			}
			// Step 12: R(F) := π_{(𝐕∪𝐖ᵢ)∩(∪𝓕)} R(F).
			proj := vAttrs.Union(wAttrs[i]).Intersect(unionF)
			d.prog.Stmts = append(d.prog.Stmts, program.Stmt{
				Op: program.OpProject, Head: fName, Arg1: fName, Proj: proj,
			})
			d.annots = append(d.annots, spine[i-1].Mask())
			fAttrs = proj
			// Step 13: R(F) := R(F) ⋉ R(𝐖ᵢ); afterwards R(F) = π_F(⋈D[𝒱ᵢ]).
			d.prog.Stmts = append(d.prog.Stmts, program.Stmt{
				Op: program.OpSemijoin, Head: fName, Arg1: fName, Arg2: d.attach[w[i]],
			})
			d.annots = append(d.annots, spine[i].Mask())
			// Step 14: R(V) := R(V) ⋈ R(F); R(V) = π_V(⋈D[𝒱ᵢ]).
			emitJoinV(fName, spine[i].Mask())
			vAttrs = vAttrs.Union(fAttrs)
		}
	}

	// Step 17: join in every 𝐖ᵢ not already subsumed by 𝐕; throughout,
	// R(V) = π_V(⋈D[𝒱]).
	for i := 1; i <= n; i++ {
		if !vAttrs.ContainsAll(wAttrs[i]) {
			emitJoinV(d.attach[w[i]], v.Mask())
			vAttrs = vAttrs.Union(wAttrs[i])
		}
	}

	// Step 18: attach R(V) to 𝒱. If no statement was emitted (possible only
	// when n = 0, i.e. 𝒱 is a leaf — handled by the caller), cur is still
	// the alias.
	d.attach[v] = cur
}

// DeriveFromTree composes Algorithms 1 and 2: CPFify the given (arbitrary)
// tree, then derive a program from the result. The returned derivation's
// program is quasi-optimal relative to t by Theorem 2.
func DeriveFromTree(t *jointree.Tree, h *hypergraph.Hypergraph, policy ChoicePolicy) (*Derivation, error) {
	cpf, err := CPFify(t, h, policy)
	if err != nil {
		return nil, err
	}
	return Derive(cpf, h)
}
