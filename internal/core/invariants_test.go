package core

import (
	"math/rand"
	"testing"

	"repro/internal/jointree"
	"repro/internal/relation"
)

// TestVerifyInvariantsExample6 checks every statement of the paper's
// Example 6 program against the Theorem 1 proof's intermediate claims.
func TestVerifyInvariantsExample6(t *testing.T) {
	h := paperScheme(t)
	db := smallCycleDB(t, 3, 3)
	d, err := Derive(figure2Tree(t, h), h)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := VerifyInvariants(d, db)
	if err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
	if checked != 10 {
		t.Errorf("checked %d statements, want 10", checked)
	}
}

// TestVerifyInvariantsRandomized validates the proof claims across random
// schemes, databases, trees, and Algorithm 1 choices.
func TestVerifyInvariantsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 40; trial++ {
		h := randomConnectedScheme(rng, 2+rng.Intn(4), 3+rng.Intn(4), 3)
		db := randomDatabase(rng, h, 1+rng.Intn(8), 3)
		tr := randomTree(rng, h.Len())
		d, err := DeriveFromTree(tr, h, RandomChoice{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyInvariants(d, db); err != nil {
			t.Fatalf("trial %d: %v\nscheme %s\ntree %s\nprogram:\n%s",
				trial, err, h, tr.String(h), d.Program)
		}
	}
}

// TestVerifyInvariantsArbitraryCPF: the proof claims hold for any CPF tree,
// not only Algorithm 1 outputs.
func TestVerifyInvariantsArbitraryCPF(t *testing.T) {
	h := paperScheme(t)
	db := smallCycleDB(t, 3, 2)
	trees := []string{
		"(ABC ⋈ CDE) ⋈ (EFG ⋈ GHA)",
		"GHA ⋈ ((ABC ⋈ CDE) ⋈ EFG)",
		"(GHA ⋈ (EFG ⋈ (CDE ⋈ ABC)))",
	}
	for _, expr := range trees {
		d, err := Derive(jointree.MustParse(h, expr), h)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if _, err := VerifyInvariants(d, db); err != nil {
			t.Errorf("%s: %v", expr, err)
		}
	}
}

// TestVerifyInvariantsAnnotationCount: every derived statement carries an
// annotation.
func TestVerifyInvariantsAnnotationCount(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 30; trial++ {
		h := randomConnectedScheme(rng, 2+rng.Intn(5), 3+rng.Intn(4), 3)
		tr := randomTree(rng, h.Len())
		d, err := DeriveFromTree(tr, h, RandomChoice{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Annotations) != d.Program.Len() {
			t.Fatalf("trial %d: %d annotations for %d statements", trial, len(d.Annotations), d.Program.Len())
		}
	}
}

// TestClaimABHeadBounds checks the mechanism behind Theorem 2 (Claims A and
// B): every statement head of a program derived via Algorithm 1 from a tree
// T1 has at most as many tuples as some node of T1 — i.e. max head size ≤
// max node size of T1(D). Combined with Claim C's statement count, this is
// exactly how the paper assembles the r(a+5) factor.
func TestClaimABHeadBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	for trial := 0; trial < 40; trial++ {
		h := randomConnectedScheme(rng, 2+rng.Intn(5), 3+rng.Intn(4), 3)
		db := randomDatabase(rng, h, 2+rng.Intn(10), 2)
		if db.Join().IsEmpty() {
			continue // Claims A/B assume ⋈D ≠ ∅
		}
		t1 := randomTree(rng, h.Len())
		d, err := DeriveFromTree(t1, h, RandomChoice{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Program.Apply(db)
		if err != nil {
			t.Fatal(err)
		}
		// Largest node size anywhere in T1(D).
		maxNode := 0
		var walk func(n *jointree.Tree) *relation.Relation
		walk = func(n *jointree.Tree) *relation.Relation {
			if n.IsLeaf() {
				r := db.Relation(n.Leaf)
				if r.Len() > maxNode {
					maxNode = r.Len()
				}
				return r
			}
			out := relation.Join(walk(n.Left), walk(n.Right))
			if out.Len() > maxNode {
				maxNode = out.Len()
			}
			return out
		}
		walk(t1)
		for k, step := range res.Trace {
			if step.Size > maxNode {
				t.Fatalf("trial %d: statement %d head has %d tuples > max T1 node %d\nscheme %s\nT1 %s\nprogram:\n%s",
					trial, k+1, step.Size, maxNode, h, t1.String(h), d.Program)
			}
		}
	}
}
