package core

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func TestDeriveProjectionPaperScheme(t *testing.T) {
	h := paperScheme(t)
	db := smallCycleDB(t, 3, 4)
	out := relation.AttrSetOfRunes("BH")
	d, err := DeriveProjection(figure2Tree(t, h), h, out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Program.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.MustProject(db.Join(), out)
	if !res.Output.Equal(want) {
		t.Errorf("π_%s(⋈D) wrong: got %s want %s", out, res.Output, want)
	}
}

func TestDeriveProjectionFullIsIdentity(t *testing.T) {
	h := paperScheme(t)
	d, err := DeriveProjection(figure2Tree(t, h), h, h.Attrs())
	if err != nil {
		t.Fatal(err)
	}
	if d.Program.Len() != 10 {
		t.Errorf("full projection added statements: %d", d.Program.Len())
	}
}

func TestDeriveProjectionEmptyIsBoolean(t *testing.T) {
	h := paperScheme(t)
	db := smallCycleDB(t, 3, 2)
	d, err := DeriveProjection(figure2Tree(t, h), h, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Program.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Len() != 1 || res.Output.Schema().Len() != 0 {
		t.Errorf("boolean query = %d tuples over %d attrs, want 1 over 0", res.Output.Len(), res.Output.Schema().Len())
	}
}

func TestDeriveProjectionRejectsUnknownAttrs(t *testing.T) {
	h := paperScheme(t)
	if _, err := DeriveProjection(figure2Tree(t, h), h, relation.NewAttrSet("Z")); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestDeriveProjectionRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		h := randomConnectedScheme(rng, 2+rng.Intn(4), 3+rng.Intn(3), 3)
		db := randomDatabase(rng, h, 1+rng.Intn(10), 3)
		tr := randomTree(rng, h.Len())
		cpf, err := CPFify(tr, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		var out relation.AttrSet
		for _, a := range h.Attrs() {
			if rng.Intn(2) == 0 {
				out = out.Union(relation.NewAttrSet(a))
			}
		}
		d, err := DeriveProjection(cpf, h, out)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Program.Apply(db)
		if err != nil {
			t.Fatal(err)
		}
		want := relation.MustProject(db.Join(), out)
		if !res.Output.Equal(want) {
			t.Fatalf("trial %d: projection program wrong on %s over %s", trial, h, out)
		}
	}
}
