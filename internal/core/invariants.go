package core

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// VerifyInvariants executes a derivation's program on db and checks the
// Theorem 1 proof's intermediate claims statement by statement: after the
// k-th statement, the head relation must equal the projection of
// ⋈D[Annotations[k]] onto the head's schema. It returns the number of
// statements checked, or an error naming the first violated invariant.
//
// This is stronger than checking the final output: it validates every line
// of the derived program against the paper's proof sketch. Partial joins
// ⋈D[𝒱ᵢ] are materialized directly, so use small databases.
func VerifyInvariants(d *Derivation, db *relation.Database) (int, error) {
	if len(d.Annotations) != d.Program.Len() {
		return 0, fmt.Errorf("core: %d annotations for %d statements", len(d.Annotations), d.Program.Len())
	}
	res, err := d.Program.Apply(db)
	if err != nil {
		return 0, err
	}
	partial := make(map[hypergraph.Mask]*relation.Relation)
	partialJoin := func(mask hypergraph.Mask) (*relation.Relation, error) {
		if got, ok := partial[mask]; ok {
			return got, nil
		}
		sub, err := db.Restrict(mask.Indexes())
		if err != nil {
			return nil, err
		}
		out := sub.Join()
		partial[mask] = out
		return out, nil
	}
	for k, step := range res.Trace {
		mask := d.Annotations[k]
		want, err := partialJoin(mask)
		if err != nil {
			return k, err
		}
		proj, err := relation.Project(want, step.Schema.AttrSet())
		if err != nil {
			return k, fmt.Errorf("core: statement %d: head schema %s outside ⋈D[%v]: %v",
				k+1, step.Schema, mask, err)
		}
		// Re-run the program up to statement k to get the head value? The
		// trace already carries sizes but not contents; re-execute the
		// prefix instead.
		head, err := headAfter(d, db, k)
		if err != nil {
			return k, err
		}
		if !head.Equal(proj) {
			return k, fmt.Errorf("core: statement %d (%s): head ≠ π_%s(⋈D[%v]) — invariant violated",
				k+1, step.Stmt, step.Schema.AttrSet(), mask)
		}
	}
	return d.Program.Len(), nil
}

// headAfter executes the first k+1 statements and returns the k-th head's
// relation.
func headAfter(d *Derivation, db *relation.Database, k int) (*relation.Relation, error) {
	prefix := *d.Program
	prefix.Stmts = d.Program.Stmts[:k+1]
	prefix.Output = d.Program.Stmts[k].Head
	res, err := prefix.Apply(db)
	if err != nil {
		return nil, err
	}
	return res.Output, nil
}
