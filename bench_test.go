// Package repro's benchmarks regenerate every experiment in DESIGN.md's
// index (one benchmark per table/figure/claim, E1–E10) plus operator
// kernels. Custom metrics report the quantities the paper talks about —
// costs and cost ratios — alongside wall-clock time.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/acyclic"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/optimizer"
	"repro/internal/program"
	"repro/internal/relation"
	"repro/internal/workload"
)

// example3 builds the paper-shaped instance at scale q, failing the
// benchmark on error.
func example3(b *testing.B, q int64) (workload.CycleSpec, *relation.Database) {
	b.Helper()
	spec, err := workload.Example3(q)
	if err != nil {
		b.Fatal(err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		b.Fatal(err)
	}
	return spec, db
}

// BenchmarkExample3Expressions (E1) measures the exact optimization of the
// Example-3 instance in each search space and reports the paper's headline
// numbers as metrics.
func BenchmarkExample3Expressions(b *testing.B) {
	for _, q := range []int64{6, 10, 16} {
		spec, db := example3(b, q)
		_ = spec
		b.Run(bname("q", q), func(b *testing.B) {
			var optCost, cpfCost int64
			for i := 0; i < b.N; i++ {
				cat := optimizer.NewCatalog(db, 0)
				opt, err := optimizer.Optimal(cat, optimizer.SpaceAll)
				if err != nil {
					b.Fatal(err)
				}
				cpf, err := optimizer.Optimal(cat, optimizer.SpaceCPF)
				if err != nil {
					b.Fatal(err)
				}
				optCost, cpfCost = opt.Cost, cpf.Cost
			}
			b.ReportMetric(float64(optCost), "optimal-cost")
			b.ReportMetric(float64(cpfCost), "cheapest-CPF-cost")
			b.ReportMetric(float64(cpfCost)/float64(optCost), "CPF/opt-ratio")
		})
	}
}

// BenchmarkExample3Program (E3) derives the program from the optimal tree
// and executes it on the Example-3 database.
func BenchmarkExample3Program(b *testing.B) {
	for _, q := range []int64{6, 10, 16} {
		spec, db := example3(b, q)
		h := hypergraph.OfScheme(db)
		tree, err := spec.NonCPFCycleExpression()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bname("q", q), func(b *testing.B) {
			var cost int
			for i := 0; i < b.N; i++ {
				d, err := core.DeriveFromTree(tree, h, nil)
				if err != nil {
					b.Fatal(err)
				}
				res, err := d.Program.Apply(db)
				if err != nil {
					b.Fatal(err)
				}
				if res.Output.Len() != 1 {
					b.Fatalf("program computed %d tuples", res.Output.Len())
				}
				cost = res.Cost
			}
			b.ReportMetric(float64(cost), "program-cost")
		})
	}
}

// BenchmarkAlgorithm1 (E2) measures CPFify itself — pure tree surgery,
// independent of data size.
func BenchmarkAlgorithm1(b *testing.B) {
	h := experiments.PaperScheme()
	t1 := experiments.Figure1Tree(h)
	b.Run("Figure1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CPFify(t1, h, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Enumerate16", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			all, err := core.EnumerateCPFifications(t1, h, 0)
			if err != nil {
				b.Fatal(err)
			}
			n = len(all)
		}
		b.ReportMetric(float64(n), "distinct-trees")
	})
	// Larger random input: a 10-cycle.
	spec := workload.UniformCycle(10, 2, 1)
	h10, err := spec.CycleScheme()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	tree := jointree.RandomTree(rng, 10)
	b.Run("random10cycle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CPFify(tree, h10, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAlgorithm2 (E3) measures Derive — statement generation only.
func BenchmarkAlgorithm2(b *testing.B) {
	h := experiments.PaperScheme()
	t2 := experiments.Figure2Tree(h)
	b.Run("Figure2", func(b *testing.B) {
		var stmts int
		for i := 0; i < b.N; i++ {
			d, err := core.Derive(t2, h)
			if err != nil {
				b.Fatal(err)
			}
			stmts = d.Program.Len()
		}
		b.ReportMetric(float64(stmts), "statements")
	})
	spec := workload.UniformCycle(10, 2, 1)
	h10, err := spec.CycleScheme()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	tree := jointree.RandomTree(rng, 10)
	cpf, err := core.CPFify(tree, h10, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("random10cycle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Derive(cpf, h10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDeriveAndRun (E4) measures the full Theorem-1 pipeline on random
// instances: CPFify + Derive + Apply + correctness check.
func BenchmarkDeriveAndRun(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
		Relations: 5, Attrs: 6, MaxArity: 3, Connected: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	db, err := workload.RandomDatabase(rng, h, 30, 3)
	if err != nil {
		b.Fatal(err)
	}
	want := db.Join()
	tree := jointree.RandomTree(rng, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := core.DeriveFromTree(tree, h, nil)
		if err != nil {
			b.Fatal(err)
		}
		res, err := d.Program.Apply(db)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Output.Equal(want) {
			b.Fatal("wrong output")
		}
	}
}

// BenchmarkTheorem2Bound (E5/E6) measures one bound-verification trial and
// reports the observed cost ratio against r(a+5).
func BenchmarkTheorem2Bound(b *testing.B) {
	spec, db := example3(b, 10)
	h := hypergraph.OfScheme(db)
	tree, err := spec.NonCPFCycleExpression()
	if err != nil {
		b.Fatal(err)
	}
	t1Cost := tree.Cost(db)
	var ratio float64
	var bound int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := core.DeriveFromTree(tree, h, nil)
		if err != nil {
			b.Fatal(err)
		}
		res, err := d.Program.Apply(db)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cost >= d.QuasiFactor*t1Cost {
			b.Fatal("Theorem 2 bound violated")
		}
		ratio = float64(res.Cost) / float64(t1Cost)
		bound = d.QuasiFactor
	}
	b.ReportMetric(ratio, "cost-ratio")
	b.ReportMetric(float64(bound), "bound-r(a+5)")
}

// BenchmarkFullReducer (E7) measures the semijoin program on the dangling
// chain and on the pairwise-consistent restriction.
func BenchmarkFullReducer(b *testing.B) {
	dangling, err := workload.DanglingChainDatabase(6, 200, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("danglingChain", func(b *testing.B) {
		var removed int
		for i := 0; i < b.N; i++ {
			reduced, _, err := acyclic.Reduce(dangling)
			if err != nil {
				b.Fatal(err)
			}
			removed = dangling.TotalTuples() - reduced.TotalTuples()
		}
		b.ReportMetric(float64(removed), "tuples-removed")
	})
	spec := workload.UniformCycle(4, 3, 40)
	cyc, err := spec.CycleDatabase()
	if err != nil {
		b.Fatal(err)
	}
	path, err := cyc.Restrict([]int{0, 1, 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pairwiseConsistentPath", func(b *testing.B) {
		var removed int
		for i := 0; i < b.N; i++ {
			reduced, _, err := acyclic.Reduce(path)
			if err != nil {
				b.Fatal(err)
			}
			removed = path.TotalTuples() - reduced.TotalTuples()
		}
		if removed != 0 {
			b.Fatal("reducer removed tuples from pairwise-consistent data")
		}
		b.ReportMetric(float64(removed), "tuples-removed")
	})
}

// BenchmarkYannakakis (E8) measures the acyclic pipeline.
func BenchmarkYannakakis(b *testing.B) {
	db, err := workload.DanglingChainDatabase(6, 200, 100)
	if err != nil {
		b.Fatal(err)
	}
	proj := relation.NewAttrSet("x0", "x6")
	b.Run("projectJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := acyclic.Yannakakis(db, proj); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fullJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := acyclic.Join(db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSearchSpace (E9) measures the space-size counters of §4.
func BenchmarkSearchSpace(b *testing.B) {
	spec := workload.UniformCycle(12, 2, 1)
	h, err := spec.CycleScheme()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cpf float64
	for i := 0; i < b.N; i++ {
		n := jointree.CountCPFTrees(h)
		f, _ := n.Float64()
		cpf = f
		jointree.CountLinearTrees(h, true)
	}
	b.ReportMetric(cpf, "CPF-trees-12cycle")
}

// BenchmarkLinearCPFProbe (E10) measures one probe instance: derive a
// program from every linear CPF tree of the paper scheme and keep the best.
func BenchmarkLinearCPFProbe(b *testing.B) {
	_, db := example3(b, 6)
	h := hypergraph.OfScheme(db)
	trees, err := jointree.AllLinearTrees(h, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var best int
	for i := 0; i < b.N; i++ {
		best = 1 << 30
		for _, tr := range trees {
			d, err := core.Derive(tr, h)
			if err != nil {
				b.Fatal(err)
			}
			res, err := d.Program.Apply(db)
			if err != nil {
				b.Fatal(err)
			}
			if res.Cost < best {
				best = res.Cost
			}
		}
	}
	b.ReportMetric(float64(best), "best-linear-CPF-program-cost")
}

// BenchmarkOptimizers (EX1) measures each optimizer on a uniform cycle.
func BenchmarkOptimizers(b *testing.B) {
	db, err := workload.UniformCycle(6, 3, 4).CycleDatabase()
	if err != nil {
		b.Fatal(err)
	}
	warm := optimizer.NewCatalog(db, 0)
	if _, err := optimizer.Optimal(warm, optimizer.SpaceAll); err != nil {
		b.Fatal(err)
	}
	b.Run("exactAll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := optimizer.Optimal(warm, optimizer.SpaceAll); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exactCPF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := optimizer.Optimal(warm, optimizer.SpaceCPF); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := optimizer.Greedy(warm, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	rng := rand.New(rand.NewSource(4))
	b.Run("simulatedAnnealing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := optimizer.SimulatedAnnealing(warm, rng, optimizer.AnnealOptions{Epochs: 10}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("estimatorDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := optimizer.EstimatedOptimal(db, optimizer.SpaceCPF); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOperators measures the relational kernels the whole system rests
// on.
func BenchmarkOperators(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	mk := func(scheme string, n, domain int) *relation.Relation {
		r := relation.New(relation.SchemaOfRunes(scheme))
		for i := 0; i < n; i++ {
			row := make(relation.Tuple, r.Schema().Len())
			for c := range row {
				row[c] = relation.Int(int64(rng.Intn(domain)))
			}
			r.MustInsert(row)
		}
		return r
	}
	l := mk("ABC", 10000, 300)
	r := mk("CDE", 10000, 300)
	b.Run("HashJoin10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			relation.Join(l, r)
		}
	})
	b.Run("Semijoin10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			relation.Semijoin(l, r)
		}
	})
	b.Run("Project10k", func(b *testing.B) {
		attrs := relation.NewAttrSet("A", "C")
		for i := 0; i < b.N; i++ {
			relation.MustProject(l, attrs)
		}
	})
	b.Run("ProgramApply", func(b *testing.B) {
		db := relation.MustDatabase(l, r)
		p := &program.Program{
			Inputs: []string{"ABC", "CDE"},
			Stmts: []program.Stmt{
				{Op: program.OpSemijoin, Head: "ABC", Arg1: "ABC", Arg2: "CDE"},
				{Op: program.OpJoin, Head: "V", Arg1: "ABC", Arg2: "CDE"},
			},
			Output: "V",
		}
		for i := 0; i < b.N; i++ {
			if _, err := p.Apply(db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// bname formats a sub-benchmark name.
func bname(k string, v int64) string {
	return k + "=" + itoa(v)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// BenchmarkEngineStrategies (EX2) measures the engine's execution routes on
// the Example-3 instance.
func BenchmarkEngineStrategies(b *testing.B) {
	_, db := example3(b, 10)
	for _, s := range []engine.Strategy{
		engine.StrategyDirect,
		engine.StrategyExpression,
		engine.StrategyReduceThenJoin,
		engine.StrategyProgram,
	} {
		b.Run(s.String(), func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				rep, err := engine.Join(db, engine.Options{Strategy: s})
				if err != nil {
					b.Fatal(err)
				}
				cost = rep.Cost
			}
			b.ReportMetric(float64(cost), "exec-cost")
		})
	}
}

// BenchmarkRandomTree measures the Rémy sampler.
func BenchmarkRandomTree(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < b.N; i++ {
		jointree.RandomTree(rng, 12)
	}
}
