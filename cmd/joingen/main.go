// Command joingen writes workload databases to disk as TSV files, one file
// per relation, for use with cpfderive -data or any external tool.
//
// Usage:
//
//	joingen -out dir -cycle 4 -m 2 -payload "500,50,5,50"   # Example-3 family
//	joingen -out dir -example3 10                           # the paper-shaped instance at scale q
//	joingen -out dir -scheme "ABC CDE EFG" -size 50 -domain 5 -seed 3
//	joingen -out dir -chain 4 -domain 12 -dangling 6
//
// Exactly one of -cycle, -example3, -scheme, -chain selects the generator.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	out := flag.String("out", ".", "output directory")
	cycle := flag.Int("cycle", 0, "generate the cycle family with this many relations")
	m := flag.Int64("m", 2, "cycle link-domain size")
	payload := flag.String("payload", "", "comma-separated per-relation payload counts for -cycle")
	example3 := flag.Int64("example3", 0, "generate the paper-shaped Example 3 instance at this (even) scale")
	scheme := flag.String("scheme", "", "generate random data over this scheme")
	size := flag.Int("size", 50, "tuples per relation for -scheme")
	domain := flag.Int("domain", 5, "attribute domain for -scheme, value domain for -chain")
	seed := flag.Int64("seed", 1, "random seed for -scheme")
	chain := flag.Int("chain", 0, "generate the successor-chain database with this many relations")
	dangling := flag.Int("dangling", 0, "dangling tuples per relation for -chain")
	flag.Parse()

	db, err := build(*cycle, *m, *payload, *example3, *scheme, *size, *domain, *seed, *chain, *dangling)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < db.Len(); i++ {
		rel := db.Relation(i)
		path := filepath.Join(*out, fmt.Sprintf("r%d_%s.tsv", i+1, sanitize(rel.Schema().String())))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := rel.WriteTSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d tuples over %s)\n", path, rel.Len(), rel.Schema())
	}
}

func build(cycle int, m int64, payload string, example3 int64, scheme string, size, domain int, seed int64, chain, dangling int) (*relation.Database, error) {
	selected := 0
	for _, on := range []bool{cycle > 0, example3 > 0, scheme != "", chain > 0} {
		if on {
			selected++
		}
	}
	if selected != 1 {
		return nil, fmt.Errorf("select exactly one generator: -cycle, -example3, -scheme, or -chain")
	}
	switch {
	case example3 > 0:
		spec, err := workload.Example3(example3)
		if err != nil {
			return nil, err
		}
		return spec.CycleDatabase()
	case cycle > 0:
		payloads := make([]int64, 0, cycle)
		if payload == "" {
			for i := 0; i < cycle; i++ {
				payloads = append(payloads, 10)
			}
		} else {
			for _, p := range strings.Split(payload, ",") {
				v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad payload list %q: %v", payload, err)
				}
				payloads = append(payloads, v)
			}
		}
		spec := workload.CycleSpec{Relations: cycle, M: m, Payloads: payloads}
		return spec.CycleDatabase()
	case chain > 0:
		if dangling > 0 {
			return workload.DanglingChainDatabase(chain, domain, dangling)
		}
		return workload.ChainDatabase(chain, domain)
	default:
		h, err := hypergraph.ParseScheme(scheme)
		if err != nil {
			return nil, err
		}
		return workload.RandomDatabase(rand.New(rand.NewSource(seed)), h, size, domain)
	}
}

// sanitize makes a schema string safe as a file-name fragment.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '(', ')', ',', ' ':
			return '_'
		}
		return r
	}, s)
}
