// Command joind is a concurrent join-serving daemon: it holds a catalog of
// registered databases, caches derived plans per scheme fingerprint (the
// paper's Theorems 1–2 make one plan per scheme correct and quasi-optimal
// for every instance), and serves joins over HTTP/JSON with admission
// control and a global tuple budget. With -data-dir set, the catalog is
// durable: registrations and batched ingests are write-ahead logged and
// snapshot-checkpointed, and a restart replays the log before the daemon
// reports ready (see docs/STORAGE.md).
//
// Usage:
//
//	joind [-addr :8080] [-workers n] [-queue-depth n] [-queue-timeout 5s]
//	      [-plan-cache 128] [-global-max-tuples n] [-max-tuples-per-query n]
//	      [-default-timeout d] [-search-budget n] [-query-workers n]
//	      [-worker-budget n] [-slow-threshold d] [-slow-log n]
//	      [-preload name=r1.tsv,r2.tsv,...]
//	      [-data-dir dir] [-fsync always|interval|never]
//	      [-fsync-interval 100ms] [-checkpoint-every n]
//	      [-shards n] [-shard-broadcast-threshold n]
//	      [-shard-peers url1,url2,...]
//	      [-hybrid-skew-threshold x] [-hybrid-trie-cost-factor x]
//
// With -shards N > 1, every registered database is hash-partitioned on a
// join attribute chosen from its hypergraph and queries scatter across an
// in-process shard group; -shard-peers replaces the in-process group with
// an HTTP fan-out to remote joind peers, one per shard (the peer count
// overrides -shards). See docs/SHARDING.md.
//
// API (see docs/SERVICE.md for the full reference and a worked session,
// docs/OBSERVABILITY.md for the metrics and slow-query log, and
// docs/STORAGE.md for durability semantics):
//
//	POST /v1/databases  register a named database (durable with -data-dir)
//	GET  /v1/databases  list the catalog
//	POST /v1/query      join a registered database
//	POST /v1/ingest     apply batched inserts/deletes durably
//	GET  /v1/stats      service + plan-cache + store counters
//	GET  /v1/slow       slow-query log with span-tree drill-down
//	GET  /metrics       Prometheus text exposition
//	GET  /livez         liveness (200 as soon as HTTP is up)
//	GET  /readyz        readiness (503 "recovering" until WAL replay finishes)
//	GET  /healthz       readiness-gated health (same as /readyz)
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: readiness flips off,
// the HTTP server stops accepting connections and drains in-flight requests,
// then in-flight queries finish and the store flushes its WALs and writes a
// final checkpoint, so the next start replays nothing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/failpoint"
	"repro/internal/optimizer"
	"repro/internal/relation"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent query executions (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "queries allowed to wait for a worker before 429 (0 = 4×workers)")
	queueTimeout := flag.Duration("queue-timeout", 0, "max time a query waits for a worker before 429 (0 = 5s)")
	planCache := flag.Int("plan-cache", 0, "plan cache capacity in entries (0 = default)")
	globalMaxTuples := flag.Int64("global-max-tuples", 0, "total tuple budget across in-flight queries (0 = unlimited)")
	maxTuplesPerQuery := flag.Int64("max-tuples-per-query", 0, "per-query tuple budget cap (0 = fair share of global budget)")
	defaultTimeout := flag.Duration("default-timeout", 0, "per-query deadline when the request sets none (0 = none)")
	searchBudget := flag.Int64("search-budget", 0, "optimizer search budget on plan-cache misses (0 = optimizer default)")
	queryWorkers := flag.Int("query-workers", 0, "intra-query parallelism cap per query (0 or 1 = sequential)")
	workerBudget := flag.Int64("worker-budget", 0, "total intra-query worker goroutines across queries (0 = workers × query-workers)")
	slowThreshold := flag.Duration("slow-threshold", 0, "capture queries at least this slow in the slow-query log, with span trees (0 = disabled; 1ns = everything)")
	slowLogSize := flag.Int("slow-log", 0, "slow-query log capacity in entries (0 = default)")
	preload := flag.String("preload", "", "semicolon-separated name=r1.tsv,r2.tsv,... databases to register at startup")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	dataDir := flag.String("data-dir", "", "durable store directory: WAL-backed ingest, snapshot recovery (empty = in-memory only, ingest disabled)")
	fsyncPolicy := flag.String("fsync", "always", "WAL fsync policy: always (durable per batch), interval, never")
	fsyncInterval := flag.Duration("fsync-interval", 0, "WAL fsync cadence under -fsync interval (0 = 100ms)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "WAL records per database before an automatic snapshot checkpoint (0 = default 1024, negative = manual only)")
	shards := flag.Int("shards", 0, "hash-partition every database across this many shards and scatter queries (0 or 1 = off)")
	shardBroadcastThreshold := flag.Int("shard-broadcast-threshold", 0, "broadcast relations smaller than this instead of partitioning (0 = default, negative = never broadcast by size)")
	shardPeers := flag.String("shard-peers", "", "comma-separated remote joind base URLs, one per shard (overrides -shards; empty = in-process shards)")
	hybridSkewThreshold := flag.Float64("hybrid-skew-threshold", 0, "heavy-hitter degree ratio past which the hybrid chooser routes cyclic cores to wcoj when its DP is unavailable (0 = default 8)")
	hybridTrieCostFactor := flag.Float64("hybrid-trie-cost-factor", 0, "handicap on wcoj trie-build inputs in the hybrid route comparison (0 = default 2)")
	// One strategy registry feeds every CLI surface: the usage footer below
	// and joinrun's -strategy flag both print engine.StrategyNames(), so a
	// newly registered strategy shows up everywhere without hand-edits.
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "Usage of %s:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprintf(out, "\nQuery strategies (POST /v1/query \"strategy\"): %s\n",
			strings.Join(engine.StrategyNames(), ", "))
	}
	flag.Parse()

	// Crash/fault injection for the recovery harness and smoke tests; unset
	// in normal operation.
	if err := failpoint.EnableFromEnv("JOIND_FAILPOINTS"); err != nil {
		log.Fatal(err)
	}

	svc := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		QueueTimeout:      *queueTimeout,
		PlanCacheSize:     *planCache,
		GlobalMaxTuples:   *globalMaxTuples,
		MaxTuplesPerQuery: *maxTuplesPerQuery,
		DefaultTimeout:    *defaultTimeout,
		SearchBudget:      *searchBudget,
		Hybrid: optimizer.HybridConfig{
			SkewThreshold:  *hybridSkewThreshold,
			TrieCostFactor: *hybridTrieCostFactor,
		},
		QueryWorkers:       *queryWorkers,
		WorkerBudget:       *workerBudget,
		SlowQueryThreshold: *slowThreshold,
		SlowLogSize:        *slowLogSize,
		Shards:             *shards,
		ShardPeers:         splitPeers(*shardPeers),

		ShardBroadcastThreshold: *shardBroadcastThreshold,
	})

	// Serve HTTP immediately (liveness), but hold readiness until the store
	// has replayed its snapshot + WAL tail and the preloads are registered.
	svc.SetReady(false)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		cfg := svc.Config()
		log.Printf("joind: listening on %s (workers %d, queue depth %d, query workers %d)",
			*addr, cfg.Workers, cfg.QueueDepth, cfg.QueryWorkers)
		errCh <- srv.ListenAndServe()
	}()

	readyCh := make(chan error, 1)
	go func() {
		readyCh <- startCatalog(svc, *dataDir, *fsyncPolicy, *fsyncInterval, *checkpointEvery, *preload)
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case err := <-errCh:
			log.Fatal(err)
		case err := <-readyCh:
			if err != nil {
				log.Fatal(err)
			}
			svc.SetReady(true)
			log.Printf("joind: ready")
		case s := <-sig:
			log.Printf("joind: %v; draining for up to %s", s, *drain)
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			// Stop accepting connections and drain in-flight HTTP first,
			// then drain queries and close the store (final checkpoint).
			if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
				cancel()
				log.Fatal(err)
			}
			if err := svc.Close(ctx); err != nil {
				cancel()
				log.Fatal(err)
			}
			cancel()
			log.Printf("joind: clean shutdown")
			return
		}
	}
}

// startCatalog opens the durable store (when configured), recovers its
// databases into the service, and registers the -preload specs. With a store
// attached, preloaded names that already exist in the recovered catalog are
// skipped — the durable copy, which may contain later ingests, wins.
func startCatalog(svc *service.Service, dataDir, fsyncPolicy string, fsyncInterval time.Duration, checkpointEvery int, preload string) error {
	if dataDir != "" {
		policy, err := store.ParseFsyncPolicy(fsyncPolicy)
		if err != nil {
			return err
		}
		start := time.Now()
		st, err := store.Open(dataDir, store.Options{
			Fsync:           policy,
			FsyncInterval:   fsyncInterval,
			CheckpointEvery: checkpointEvery,
		})
		if err != nil {
			return fmt.Errorf("joind: open store %s: %w", dataDir, err)
		}
		if err := svc.AttachStore(st); err != nil {
			return err
		}
		stats := st.Stats()
		log.Printf("joind: store %s recovered in %s (%d databases, %d WAL records replayed, %d torn bytes dropped, fsync=%s)",
			dataDir, time.Since(start).Round(time.Millisecond), stats.Databases,
			stats.ReplayedRecords, stats.TornTailBytes, policy)
	}
	if preload != "" {
		if err := preloadDatabases(svc, preload); err != nil {
			return err
		}
	}
	return nil
}

// splitPeers parses the comma-separated -shard-peers list, dropping empty
// entries and trailing slashes so peer URLs concatenate cleanly with paths.
func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	var peers []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// preloadDatabases registers semicolon-separated name=file,file,... specs,
// skipping names already recovered from the durable store.
func preloadDatabases(svc *service.Service, specs string) error {
	existing := make(map[string]bool)
	for _, info := range svc.Databases() {
		existing[info.Name] = true
	}
	for _, spec := range strings.Split(specs, ";") {
		name, files, ok := strings.Cut(strings.TrimSpace(spec), "=")
		if !ok {
			return fmt.Errorf("joind: -preload entry %q is not name=files", spec)
		}
		if existing[name] {
			log.Printf("joind: preload %q skipped (already in recovered catalog)", name)
			continue
		}
		var rels []*relation.Relation
		for _, path := range strings.Split(files, ",") {
			f, err := os.Open(strings.TrimSpace(path))
			if err != nil {
				return err
			}
			rel, err := relation.ReadTSV(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %v", path, err)
			}
			rels = append(rels, rel)
		}
		db, err := relation.NewDatabase(rels...)
		if err != nil {
			return err
		}
		info, err := svc.Register(name, db)
		if err != nil {
			return err
		}
		log.Printf("joind: preloaded %q (%d relations, %d tuples, acyclic=%v)",
			info.Name, info.Relations, info.Tuples, info.Acyclic)
	}
	return nil
}
