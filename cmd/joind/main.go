// Command joind is a concurrent join-serving daemon: it holds a catalog of
// registered databases, caches derived plans per scheme fingerprint (the
// paper's Theorems 1–2 make one plan per scheme correct and quasi-optimal
// for every instance), and serves joins over HTTP/JSON with admission
// control and a global tuple budget.
//
// Usage:
//
//	joind [-addr :8080] [-workers n] [-queue-depth n] [-queue-timeout 5s]
//	      [-plan-cache 128] [-global-max-tuples n] [-max-tuples-per-query n]
//	      [-default-timeout d] [-search-budget n] [-query-workers n]
//	      [-worker-budget n] [-slow-threshold d] [-slow-log n]
//	      [-preload name=r1.tsv,r2.tsv,...]
//
// API (see docs/SERVICE.md for the full reference and a worked session,
// and docs/OBSERVABILITY.md for the metrics and slow-query log):
//
//	POST /v1/databases  register a named database
//	GET  /v1/databases  list the catalog
//	POST /v1/query      join a registered database
//	GET  /v1/stats      service + plan-cache counters
//	GET  /v1/slow       slow-query log with span-tree drill-down
//	GET  /metrics       Prometheus text exposition
//	GET  /healthz       liveness
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections and waits briefly for in-flight queries (whose governors see
// their request contexts cancel when the drain deadline passes).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/relation"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent query executions (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "queries allowed to wait for a worker before 429 (0 = 4×workers)")
	queueTimeout := flag.Duration("queue-timeout", 0, "max time a query waits for a worker before 429 (0 = 5s)")
	planCache := flag.Int("plan-cache", 0, "plan cache capacity in entries (0 = default)")
	globalMaxTuples := flag.Int64("global-max-tuples", 0, "total tuple budget across in-flight queries (0 = unlimited)")
	maxTuplesPerQuery := flag.Int64("max-tuples-per-query", 0, "per-query tuple budget cap (0 = fair share of global budget)")
	defaultTimeout := flag.Duration("default-timeout", 0, "per-query deadline when the request sets none (0 = none)")
	searchBudget := flag.Int64("search-budget", 0, "optimizer search budget on plan-cache misses (0 = optimizer default)")
	queryWorkers := flag.Int("query-workers", 0, "intra-query parallelism cap per query (0 or 1 = sequential)")
	workerBudget := flag.Int64("worker-budget", 0, "total intra-query worker goroutines across queries (0 = workers × query-workers)")
	slowThreshold := flag.Duration("slow-threshold", 0, "capture queries at least this slow in the slow-query log, with span trees (0 = disabled; 1ns = everything)")
	slowLogSize := flag.Int("slow-log", 0, "slow-query log capacity in entries (0 = default)")
	preload := flag.String("preload", "", "semicolon-separated name=r1.tsv,r2.tsv,... databases to register at startup")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	flag.Parse()

	svc := service.New(service.Config{
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		QueueTimeout:       *queueTimeout,
		PlanCacheSize:      *planCache,
		GlobalMaxTuples:    *globalMaxTuples,
		MaxTuplesPerQuery:  *maxTuplesPerQuery,
		DefaultTimeout:     *defaultTimeout,
		SearchBudget:       *searchBudget,
		QueryWorkers:       *queryWorkers,
		WorkerBudget:       *workerBudget,
		SlowQueryThreshold: *slowThreshold,
		SlowLogSize:        *slowLogSize,
	})
	if *preload != "" {
		if err := preloadDatabases(svc, *preload); err != nil {
			log.Fatal(err)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		cfg := svc.Config()
		log.Printf("joind: listening on %s (workers %d, queue depth %d, query workers %d)",
			*addr, cfg.Workers, cfg.QueueDepth, cfg.QueryWorkers)
		errCh <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("joind: %v; draining for up to %s", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
	}
}

// preloadDatabases registers semicolon-separated name=file,file,... specs.
func preloadDatabases(svc *service.Service, specs string) error {
	for _, spec := range strings.Split(specs, ";") {
		name, files, ok := strings.Cut(strings.TrimSpace(spec), "=")
		if !ok {
			return fmt.Errorf("joind: -preload entry %q is not name=files", spec)
		}
		var rels []*relation.Relation
		for _, path := range strings.Split(files, ",") {
			f, err := os.Open(strings.TrimSpace(path))
			if err != nil {
				return err
			}
			rel, err := relation.ReadTSV(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %v", path, err)
			}
			rels = append(rels, rel)
		}
		db, err := relation.NewDatabase(rels...)
		if err != nil {
			return err
		}
		info, err := svc.Register(name, db)
		if err != nil {
			return err
		}
		log.Printf("joind: preloaded %q (%d relations, %d tuples, acyclic=%v)",
			info.Name, info.Relations, info.Tuples, info.Acyclic)
	}
	return nil
}
