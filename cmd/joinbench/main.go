// Command joinbench runs the full reproduction suite — every experiment in
// DESIGN.md's index — and prints the paper-vs-measured tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	joinbench [-quick] [-seed N] [-only E1,E3,...] [-timeout 5m] [-max-tuples n] [-json results.json]
//
// -quick lowers trial counts and scales for a fast smoke run; -only selects
// a comma-separated subset of experiment ids. -timeout bounds the whole
// suite: the deadline is checked between experiments, and the remaining
// ones are skipped (reported, exit status 1) once it passes. -max-tuples
// sets the tuple budget for the governance experiment EX6. -json also
// writes every experiment's outcome — id, title, ok/error, wall-clock
// milliseconds, and the table's columns, rows, and notes — as a JSON array
// to the given file ("-" for stdout), for dashboards and regression diffs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced trial counts and scales")
	seed := flag.Int64("seed", 1992, "random seed for the randomized experiments")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	timeout := flag.Duration("timeout", 0, "suite deadline, checked between experiments (0 = none)")
	maxTuples := flag.Int64("max-tuples", 0, "tuple budget for the EX6 governance experiment (0 = its default)")
	jsonOut := flag.String("json", "", "write per-experiment results as JSON to this file (\"-\" for stdout)")
	parallelJSON := flag.String("parallel-json", "BENCH_parallel.json", "write the EX7 speedup table as JSON to this file when EX7 runs (\"\" = skip)")
	wcojJSON := flag.String("wcoj-json", "BENCH_wcoj.json", "write the EX8 program-vs-triejoin table as JSON to this file when EX8 runs (\"\" = skip)")
	ivmJSON := flag.String("ivm-json", "BENCH_ivm.json", "write the EX9 delta-apply-vs-recompute table as JSON to this file when EX9 runs (\"\" = skip)")
	columnarJSON := flag.String("columnar-json", "BENCH_columnar.json", "write the EX10 columnar-vs-tuple-map table as JSON to this file when EX10 runs (\"\" = skip)")
	shardJSON := flag.String("shard-json", "BENCH_shard.json", "write the EX11 scatter-gather scaling table as JSON to this file when EX11 runs (\"\" = skip)")
	hybridJSON := flag.String("hybrid-json", "BENCH_hybrid.json", "write the EX12 hybrid-vs-static-ladder table as JSON to this file when EX12 runs (\"\" = skip)")
	flag.Parse()

	var deadline time.Time
	if *timeout > 0 {
		deadline = time.Now().Add(*timeout)
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[strings.ToUpper(id)] = true
		}
	}
	want := func(id string) bool {
		if len(selected) == 0 {
			return true
		}
		for _, part := range strings.Split(id, "/") {
			if selected[part] {
				return true
			}
		}
		return false
	}

	trials := 200
	measured := []int64{6, 10, 16, 20}
	e3Scale := int64(10)
	ex7Scale, ex7Trials := int64(20), 3
	ex8Trials := 3
	ex9Trials := 3
	ex10Trials := 3
	ex11Trials := 3
	ex12Trials := 3
	if *quick {
		trials = 30
		measured = []int64{6, 10}
		ex7Scale, ex7Trials = 12, 2
		ex8Trials = 1
		ex9Trials = 1
		ex10Trials = 2
		ex11Trials = 2
		ex12Trials = 2
	}
	// q = 100 and 1000 are the paper's k = 2 and k = 3 instances; beyond
	// q = 1000 the Θ(q⁵) CPF costs overflow int64.
	analytic := []int64{100, 1000}

	runs := []struct {
		id string
		fn func() (*experiments.Table, error)
	}{
		{"E1", func() (*experiments.Table, error) { return experiments.Example3Costs(measured, analytic) }},
		{"E2", experiments.Algorithm1Example},
		{"E3", func() (*experiments.Table, error) { return experiments.Algorithm2Example(e3Scale) }},
		{"E4", func() (*experiments.Table, error) { return experiments.Theorem1Verification(trials, *seed) }},
		{"E5/E6", func() (*experiments.Table, error) { return experiments.Theorem2Bound(trials/2, *seed) }},
		{"E7", experiments.FullReducerExperiment},
		{"E8", experiments.YannakakisExperiment},
		{"E9", experiments.SearchSpaceSizes},
		{"E10", func() (*experiments.Table, error) { return experiments.LinearCPFProbe(trials/10, *seed) }},
		{"E11", func() (*experiments.Table, error) { return experiments.HeadlineClaim(trials/20, *seed) }},
		{"E12", func() (*experiments.Table, error) { return experiments.TreeProjectionExperiment(trials/25, *seed) }},
		{"E13", func() (*experiments.Table, error) { return experiments.InvariantAudit(trials/5, *seed) }},
		{"EX1", func() (*experiments.Table, error) { return experiments.OptimizerComparison(*seed) }},
		{"EX2", func() (*experiments.Table, error) { return experiments.StrategyComparison(*seed) }},
		{"EX3", func() (*experiments.Table, error) { return experiments.OptimalShapeSurvey(trials/4, *seed) }},
		{"EX4", func() (*experiments.Table, error) { return experiments.EstimatorAccuracy(*seed) }},
		{"EX5", func() (*experiments.Table, error) { return experiments.TriangleExperiment(*seed) }},
		{"EX6", func() (*experiments.Table, error) { return experiments.GovernanceLadder(e3Scale, *maxTuples) }},
		{"EX7", func() (*experiments.Table, error) {
			table, bench, err := experiments.ParallelSpeedup(ex7Scale, ex7Trials)
			if err == nil && *parallelJSON != "" {
				if werr := writeParallelBench(*parallelJSON, bench); werr != nil {
					return nil, werr
				}
			}
			return table, err
		}},
		{"EX8", func() (*experiments.Table, error) {
			table, bench, err := experiments.WCOJComparison(*seed, ex8Trials)
			if err == nil && *wcojJSON != "" {
				if werr := writeWCOJBench(*wcojJSON, bench); werr != nil {
					return nil, werr
				}
			}
			return table, err
		}},
		{"EX9", func() (*experiments.Table, error) {
			table, bench, err := experiments.IVMComparison(*seed, ex9Trials)
			if err == nil && *ivmJSON != "" {
				if werr := writeIVMBench(*ivmJSON, bench); werr != nil {
					return nil, werr
				}
			}
			return table, err
		}},
		{"EX10", func() (*experiments.Table, error) {
			table, bench, err := experiments.ColumnarComparison(*seed, ex10Trials)
			if err == nil && *columnarJSON != "" {
				if werr := writeColumnarBench(*columnarJSON, bench); werr != nil {
					return nil, werr
				}
			}
			return table, err
		}},
		{"EX11", func() (*experiments.Table, error) {
			table, bench, err := experiments.ShardScaling(*seed, ex11Trials)
			if err == nil && *shardJSON != "" {
				if werr := writeShardBench(*shardJSON, bench); werr != nil {
					return nil, werr
				}
			}
			return table, err
		}},
		{"EX12", func() (*experiments.Table, error) {
			table, bench, err := experiments.HybridComparison(*seed, ex12Trials, *quick)
			if err == nil && *hybridJSON != "" {
				if werr := writeHybridBench(*hybridJSON, bench); werr != nil {
					return nil, werr
				}
			}
			return table, err
		}},
		{"EX13", experiments.AdversarialGauntlet},
	}

	fmt.Println("Reproduction suite — Morishita, \"Avoiding Cartesian Products in Programs for Multiple Joins\" (PODS 1992)")
	fmt.Println()
	if want("E2") || want("E3") {
		fmt.Println(experiments.FigureTrees())
		fmt.Println()
	}
	failed := 0
	var results []experimentResult
	for _, r := range runs {
		if !want(r.id) {
			continue
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "%s SKIPPED: suite deadline (%s) passed\n", r.id, *timeout)
			results = append(results, experimentResult{ID: r.id, Error: "skipped: suite deadline passed"})
			failed++
			continue
		}
		start := time.Now()
		table, err := r.fn()
		wallMS := float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", r.id, err)
			results = append(results, experimentResult{ID: r.id, Error: err.Error(), WallMS: wallMS})
			failed++
			continue
		}
		results = append(results, experimentResult{
			ID:      table.ID,
			Title:   table.Title,
			OK:      true,
			WallMS:  wallMS,
			Columns: table.Columns,
			Rows:    table.Rows,
			Notes:   table.Notes,
		})
		table.Render(os.Stdout)
		fmt.Println()
		if *csvDir != "" {
			if err := writeCSV(*csvDir, table); err != nil {
				fmt.Fprintf(os.Stderr, "csv %s: %v\n", r.id, err)
				failed++
			}
		}
	}
	if *jsonOut != "" {
		if err := writeResults(*jsonOut, results); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// experimentResult is one entry of the -json output: the experiment's
// outcome plus its full table, machine-readable.
type experimentResult struct {
	ID      string     `json:"id"`
	Title   string     `json:"title,omitempty"`
	OK      bool       `json:"ok"`
	Error   string     `json:"error,omitempty"`
	WallMS  float64    `json:"wall_ms"`
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Notes   []string   `json:"notes,omitempty"`
}

// writeParallelBench stores the EX7 machine-readable speedup table
// (-parallel-json; "-" = stdout).
func writeParallelBench(path string, bench *experiments.ParallelBenchResult) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(bench)
}

// writeWCOJBench stores the EX8 machine-readable comparison table
// (-wcoj-json; "-" = stdout).
func writeWCOJBench(path string, bench *experiments.WCOJBenchResult) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(bench)
}

// writeIVMBench stores the EX9 machine-readable delta-vs-recompute table
// (-ivm-json; "-" = stdout).
func writeIVMBench(path string, bench *experiments.IVMBenchResult) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(bench)
}

// writeColumnarBench stores the EX10 machine-readable columnar-vs-tuple-map
// table (-columnar-json; "-" = stdout).
func writeColumnarBench(path string, bench *experiments.ColumnarBenchResult) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(bench)
}

// writeShardBench stores the EX11 machine-readable scatter-gather scaling
// table (-shard-json; "-" = stdout).
func writeShardBench(path string, bench *experiments.ShardBenchResult) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(bench)
}

// writeHybridBench stores the EX12 machine-readable hybrid-vs-static-ladder
// table (-hybrid-json; "-" = stdout).
func writeHybridBench(path string, bench *experiments.HybridBenchResult) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(bench)
}

// writeResults stores the -json report ("-" = stdout).
func writeResults(path string, results []experimentResult) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// writeCSV stores a table as <dir>/<id>.csv.
func writeCSV(dir string, table *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ReplaceAll(table.ID, "/", "-") + ".csv"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	table.RenderCSV(f)
	return f.Close()
}
