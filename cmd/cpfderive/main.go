// Command cpfderive runs the paper's two algorithms from the command line:
// given a database scheme and (optionally) a join expression over it, it
// prints the Cartesian-product-free tree Algorithm 1 produces and the
// join/semijoin/projection program Algorithm 2 derives.
//
// Usage:
//
//	cpfderive -scheme "ABC CDE EFG GHA" [-expr "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)"] [-enumerate] [-seed N]
//	cpfderive -scheme "ABC CDE" -data r1.tsv,r2.tsv
//
// Schemes are words of single-character attributes. The expression may use
// ⋈, *, or |><| as the join operator; when omitted, a random tree is used.
// -enumerate lists every CPF tree Algorithm 1 can produce across its
// nondeterministic choices. With -data (comma-separated TSV files, one per
// relation scheme occurrence, in order) the derived program is executed and
// its cost compared with the input expression's.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/relation"
)

func main() {
	scheme := flag.String("scheme", "ABC CDE EFG GHA", "database scheme: space-separated relation schemes")
	expr := flag.String("expr", "", "join expression exactly over the scheme (default: random)")
	enumerate := flag.Bool("enumerate", false, "enumerate all CPF trees Algorithm 1 can produce")
	seed := flag.Int64("seed", 1, "seed for the random tree and random choices")
	data := flag.String("data", "", "comma-separated TSV files, one per relation scheme occurrence")
	flag.Parse()

	h, err := hypergraph.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	if !h.Connected(h.Full()) {
		log.Fatalf("scheme %s is not connected; Algorithm 1 requires a connected scheme", h)
	}

	rng := rand.New(rand.NewSource(*seed))
	var tree *jointree.Tree
	if *expr != "" {
		tree, err = jointree.Parse(h, *expr)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		tree = jointree.RandomTree(rng, h.Len())
	}

	fmt.Println("scheme:          ", h)
	fmt.Println("input expression:", tree.String(h))
	fmt.Println("CPF:             ", tree.IsCPF(h))
	fmt.Println(tree.Render(h))

	if *enumerate {
		all, err := core.EnumerateCPFifications(tree, h, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nAlgorithm 1 can produce %d distinct CPF trees:\n", len(all))
		for i, tr := range all {
			fmt.Printf("  %2d. %s\n", i+1, tr.String(h))
		}
	}

	cpf, err := core.CPFify(tree, h, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAlgorithm 1 (deterministic first-choice policy):")
	fmt.Println(cpf.String(h))
	fmt.Println(cpf.Render(h))

	d, err := core.Derive(cpf, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAlgorithm 2 program:")
	fmt.Println(d.Program)
	fmt.Printf("\n%d statements < r(a+5) = %d (Claim C); Theorem 2 bounds cost(P(D)) < %d · cost(input(D))\n",
		d.Program.Len(), d.QuasiFactor, d.QuasiFactor)

	if *data != "" {
		db, err := loadData(h, *data)
		if err != nil {
			log.Fatal(err)
		}
		out, exprCost := tree.Eval(db)
		res, err := d.Program.Apply(db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\napplied to %s:\n", db)
		fmt.Printf("  input expression cost: %d\n", exprCost)
		fmt.Printf("  program cost:          %d (bound %d)\n", res.Cost, d.QuasiFactor*exprCost)
		fmt.Printf("  program output %d tuples; matches direct evaluation: %v\n",
			res.Output.Len(), res.Output.Equal(out))
	}
}

// loadData reads one TSV relation per scheme occurrence and checks each
// file's header matches the corresponding relation scheme.
func loadData(h *hypergraph.Hypergraph, paths string) (*relation.Database, error) {
	files := strings.Split(paths, ",")
	if len(files) != h.Len() {
		return nil, fmt.Errorf("-data names %d files, scheme has %d relations", len(files), h.Len())
	}
	rels := make([]*relation.Relation, len(files))
	for i, path := range files {
		f, err := os.Open(strings.TrimSpace(path))
		if err != nil {
			return nil, err
		}
		rel, err := relation.ReadTSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		if !rel.Schema().AttrSet().Equal(h.Edge(i)) {
			return nil, fmt.Errorf("%s: header %s does not match scheme %s", path, rel.Schema(), h.Edge(i))
		}
		rels[i] = rel
	}
	return relation.NewDatabase(rels...)
}
