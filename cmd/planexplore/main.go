// Command planexplore optimizes join expressions over a randomly generated
// database for a given scheme and reports the cost landscape: the optimum in
// each search space (all / CPF / linear / linear CPF), the heuristic
// baselines, and the cost of the program Algorithms 1+2 derive from the
// optimal tree.
//
// Usage:
//
//	planexplore -scheme "ABC CDE EFG GHA" [-size 30] [-domain 3] [-seed N]
//	planexplore -cycle 4 -m 2 -payload "500,50,5,50"
//
// With -cycle the Example-3 family generator is used instead of random
// data.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/optimizer"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	scheme := flag.String("scheme", "ABC CDE EFG GHA", "database scheme (ignored with -cycle)")
	size := flag.Int("size", 30, "tuples per relation for random data")
	domain := flag.Int("domain", 3, "attribute domain size for random data")
	seed := flag.Int64("seed", 1, "random seed")
	topk := flag.Int("topk", 0, "also list the k cheapest CPF plans")
	cycle := flag.Int("cycle", 0, "use the Example-3 cycle family with this many relations")
	m := flag.Int64("m", 2, "cycle link-domain size")
	payload := flag.String("payload", "", "comma-separated per-relation payload counts for -cycle")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	db, err := buildDatabase(rng, *scheme, *size, *domain, *cycle, *m, *payload)
	if err != nil {
		log.Fatal(err)
	}
	h := hypergraph.OfScheme(db)
	fmt.Println("scheme:  ", h)
	fmt.Println("database:", db)
	fmt.Println("⋈D size: ", db.Join().Len())

	cat := optimizer.NewCatalog(db, 0)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "\nmethod\tcost\ttree")

	opt, err := optimizer.Optimal(cat, optimizer.SpaceAll)
	if err != nil {
		log.Fatal(err)
	}
	show := func(name string, p optimizer.Plan, err error) {
		if err != nil {
			fmt.Fprintf(w, "%s\t—\t(%v)\n", name, err)
			return
		}
		fmt.Fprintf(w, "%s\t%d\t%s\n", name, p.Cost, p.Tree.String(h))
	}
	show("optimal (all trees)", opt, nil)
	p, err := optimizer.Optimal(cat, optimizer.SpaceCPF)
	show("optimal CPF", p, err)
	p, err = optimizer.Optimal(cat, optimizer.SpaceLinear)
	show("optimal linear", p, err)
	p, err = optimizer.Optimal(cat, optimizer.SpaceLinearCPF)
	show("optimal linear CPF", p, err)
	p, err = optimizer.Greedy(cat, false)
	show("greedy", p, err)
	p, err = optimizer.IterativeImprovement(cat, rng, 10)
	show("iterative improvement", p, err)
	p, err = optimizer.SimulatedAnnealing(cat, rng, optimizer.AnnealOptions{})
	show("simulated annealing", p, err)
	w.Flush()

	if *topk > 0 {
		plans, err := optimizer.TopKCPF(cat, *topk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntop %d CPF plans:\n", len(plans))
		for i, p := range plans {
			fmt.Printf("  %2d. cost %-8d %s\n", i+1, p.Cost, p.Tree.String(h))
		}
	}

	// Derive and run the program from the optimal tree.
	d, err := core.DeriveFromTree(opt.Tree, h, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := d.Program.Apply(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprogram derived from the optimal tree (Algorithms 1 + 2):")
	fmt.Println(d.Program)
	fmt.Printf("\ncost(P(D)) = %d  (optimal expression: %d; Theorem 2 bound: %d)\n",
		res.Cost, opt.Cost, int64(d.QuasiFactor)*opt.Cost)
	fmt.Println("program output correct:", res.Output.Equal(db.Join()))
}

func buildDatabase(rng *rand.Rand, scheme string, size, domain, cycle int, m int64, payload string) (*relation.Database, error) {
	if cycle > 0 {
		payloads := make([]int64, 0, cycle)
		if payload == "" {
			for i := 0; i < cycle; i++ {
				payloads = append(payloads, 10)
			}
		} else {
			for _, p := range strings.Split(payload, ",") {
				v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad payload list %q: %v", payload, err)
				}
				payloads = append(payloads, v)
			}
		}
		spec := workload.CycleSpec{Relations: cycle, M: m, Payloads: payloads}
		return spec.CycleDatabase()
	}
	h, err := hypergraph.ParseScheme(scheme)
	if err != nil {
		return nil, err
	}
	return workload.RandomDatabase(rng, h, size, domain)
}
