// Command joinrun computes the natural join of a database stored as TSV
// files using the engine facade, printing an EXPLAIN-style report and
// optionally the result.
//
// Usage:
//
//	joinrun -data r1.tsv,r2.tsv,... [-strategy auto|program|cpf-expression|reduce-then-join|acyclic|direct] [-print] [-out result.tsv]
//
// Each TSV file's header names its relation's attributes (see joingen for a
// generator). The database scheme is taken from the files.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/relation"
)

func main() {
	data := flag.String("data", "", "comma-separated TSV files, one per relation")
	strategy := flag.String("strategy", "auto", "execution strategy")
	print := flag.Bool("print", false, "print the result relation")
	out := flag.String("out", "", "write the result as TSV to this file")
	flag.Parse()

	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	db, err := loadDatabase(*data)
	if err != nil {
		log.Fatal(err)
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := engine.Join(db, engine.Options{Strategy: strat})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Explain())
	if *print {
		fmt.Println()
		fmt.Println(rep.Result)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Result.WriteTSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d tuples)\n", *out, rep.Result.Len())
	}
}

func loadDatabase(paths string) (*relation.Database, error) {
	var rels []*relation.Relation
	for _, path := range strings.Split(paths, ",") {
		f, err := os.Open(strings.TrimSpace(path))
		if err != nil {
			return nil, err
		}
		rel, err := relation.ReadTSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		rels = append(rels, rel)
	}
	return relation.NewDatabase(rels...)
}

func parseStrategy(s string) (engine.Strategy, error) {
	for _, cand := range []engine.Strategy{
		engine.StrategyAuto, engine.StrategyProgram, engine.StrategyExpression,
		engine.StrategyReduceThenJoin, engine.StrategyAcyclic, engine.StrategyDirect,
	} {
		if cand.String() == s {
			return cand, nil
		}
	}
	return 0, fmt.Errorf("unknown strategy %q (want auto, program, cpf-expression, reduce-then-join, acyclic, or direct)", s)
}
