package repro

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/acyclic"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/optimizer"
	"repro/internal/program"
	"repro/internal/relation"
	"repro/internal/workload"
)

// TestEndToEndPaperPipeline is the README's quick-taste as an assertion:
// scheme → optimal-but-non-CPF expression → Algorithm 1 → Algorithm 2 →
// execution, with every paper property checked along the way.
func TestEndToEndPaperPipeline(t *testing.T) {
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workload.Example3(10)
	if err != nil {
		t.Fatal(err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatal(err)
	}
	if !db.PairwiseConsistent() || db.GloballyConsistent() {
		t.Fatal("Example-3 consistency profile wrong")
	}
	full := db.Join()
	if full.Len() != 1 {
		t.Fatalf("|⋈D| = %d", full.Len())
	}

	t1 := jointree.MustParse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	if t1.IsCPF(h) {
		t.Fatal("Figure 1 tree should not be CPF")
	}
	t1Cost := t1.Cost(db)

	// The exact optimizer agrees this tree is optimal.
	cat := optimizer.NewCatalog(db, 0)
	opt, err := optimizer.Optimal(cat, optimizer.SpaceAll)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost != int64(t1Cost) {
		t.Fatalf("optimizer cost %d, Figure 1 tree cost %d", opt.Cost, t1Cost)
	}

	t2, err := core.CPFify(t1, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !t2.IsCPF(h) {
		t.Fatal("Algorithm 1 output not CPF")
	}
	d, err := core.Derive(t2, h)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Program.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(full) {
		t.Fatal("program output wrong")
	}
	if res.Cost >= d.QuasiFactor*t1Cost {
		t.Fatalf("Theorem 2 violated: %d ≥ %d", res.Cost, d.QuasiFactor*t1Cost)
	}
	if d.Program.Len() >= d.QuasiFactor {
		t.Fatalf("Claim C violated")
	}
	// The cheapest CPF expression is worse than the program at this scale.
	cpf, err := optimizer.Optimal(cat, optimizer.SpaceCPF)
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Cost) >= cpf.Cost {
		t.Fatalf("program (%d) should beat the cheapest CPF expression (%d) at q=10", res.Cost, cpf.Cost)
	}
}

// TestEndToEndTextInterfaces round-trips the textual surfaces: join
// expression parser, program parser/printer, TSV relations.
func TestEndToEndTextInterfaces(t *testing.T) {
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Derive(jointree.MustParse(h, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA"), h)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := program.Parse(d.Program.String(), d.Program.Inputs, d.Program.Output)
	if err != nil {
		t.Fatalf("program text did not round-trip: %v", err)
	}
	if reparsed.String() != d.Program.String() {
		t.Fatal("program text changed across a round trip")
	}
}

// TestEndToEndAcyclicAgreesWithPrograms: on an acyclic scheme both the
// classical pipeline and a derived program must produce ⋈D.
func TestEndToEndAcyclicAgreesWithPrograms(t *testing.T) {
	db, err := workload.DanglingChainDatabase(4, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	classic, _, err := acyclic.Join(db)
	if err != nil {
		t.Fatal(err)
	}
	h := hypergraph.OfScheme(db)
	rng := rand.New(rand.NewSource(12))
	tree := jointree.RandomTree(rng, h.Len())
	d, err := core.DeriveFromTree(tree, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Program.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(classic) {
		t.Fatal("derived program disagrees with the classical acyclic pipeline")
	}
	if !res.Output.Equal(db.Join()) {
		t.Fatal("both disagree with direct evaluation")
	}
}

// TestEndToEndDeadCodeSafety: eliminating dead statements from derived
// programs never changes the result (derived programs should have none).
func TestEndToEndDeadCodeSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 2 + rng.Intn(4), Attrs: 5, MaxArity: 3, Connected: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		db, err := workload.RandomDatabase(rng, h, 10, 3)
		if err != nil {
			t.Fatal(err)
		}
		tree := jointree.RandomTree(rng, h.Len())
		d, err := core.DeriveFromTree(tree, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		lean := d.Program.EliminateDead()
		a, err := d.Program.Apply(db)
		if err != nil {
			t.Fatal(err)
		}
		b, err := lean.Apply(db)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Output.Equal(b.Output) {
			t.Fatalf("trial %d: dead-code elimination changed the output", trial)
		}
		if lean.Len() != d.Program.Len() {
			// Not an error — but derived programs are expected lean; log it.
			t.Logf("trial %d: derived program had %d dead statements", trial, d.Program.Len()-lean.Len())
		}
	}
}

// TestTSVBridge writes a workload relation to TSV and reads it back.
func TestTSVBridge(t *testing.T) {
	spec := workload.UniformCycle(4, 2, 3)
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	if err := db.Relation(0).WriteTSV(&sink); err != nil {
		t.Fatal(err)
	}
	back, err := relation.ReadTSV(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(db.Relation(0)) {
		t.Fatal("TSV bridge corrupted the relation")
	}
}
