// Papertrace replays the paper's worked examples 1–6 verbatim, printing
// each alongside the objects this library builds for them. It is the
// fidelity check that every construct in the paper has a live counterpart.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/program"
	"repro/internal/workload"
)

func main() {
	// ——— Example 1: the database scheme and its hypergraph ———
	fmt.Println("Example 1 — the database scheme 𝒟 = {ABC, CDE, EFG, GHA}")
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  hypergraph:", h)
	fmt.Println("  connected: ", h.Connected(h.Full()))
	sub := hypergraph.MaskOf(0, 1) // D[{ABC, CDE}]
	fmt.Printf("  restriction D[{ABC, CDE}] covers attributes %s\n\n", h.AttrsOf(sub))

	// ——— Example 2: a program with explicit join statements ———
	fmt.Println("Example 2 — a program computing ⋈D via the opposite pairs")
	p := &program.Program{
		Inputs: []string{"ABC", "CDE", "EFG", "GHA"},
		Stmts: []program.Stmt{
			{Op: program.OpJoin, Head: "X", Arg1: "ABC", Arg2: "EFG"},
			{Op: program.OpJoin, Head: "Y", Arg1: "CDE", Arg2: "GHA"},
			{Op: program.OpJoin, Head: "X", Arg1: "X", Arg2: "Y"},
		},
		Output: "X",
	}
	fmt.Println(indent(p.String()))
	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  (validates under the §2.2 well-formedness rules)")
	fmt.Println()

	// ——— Example 3: the adversarial database ———
	fmt.Println("Example 3 — pairwise consistent, |⋈D| = 1, CPF expressions hopeless")
	spec, err := workload.Example3(10) // the paper's k = 1
	if err != nil {
		log.Fatal(err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  database:", db)
	fmt.Println("  pairwise consistent:", db.PairwiseConsistent())
	fmt.Println("  globally consistent:", db.GloballyConsistent())
	full := db.Join()
	fmt.Println("  |⋈D| =", full.Len())
	optimal := jointree.MustParse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	fmt.Printf("  E = %s is optimal; cost(E(D)) = %d  (paper: < 10^{4k+1} = 10^5)\n",
		optimal.String(h), optimal.Cost(db))
	cheapCPF := jointree.MustParse(h, "((GHA ⋈ EFG) ⋈ CDE) ⋈ ABC")
	fmt.Printf("  cheapest CPF expression costs %d — worse, and the gap grows with k\n\n", cheapCPF.Cost(db))

	// ——— Example 4 / Figure 1: the join expression tree ———
	fmt.Println("Example 4 / Figure 1 — the join expression tree of E")
	fmt.Println(indent(optimal.Render(h)))
	fmt.Println()

	// ——— Example 5 / Figure 2: Algorithm 1 ———
	fmt.Println("Example 5 / Figure 2 — Algorithm 1 on the Figure 1 tree")
	all, err := core.EnumerateCPFifications(optimal, h, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  the nondeterministic choices produce %d distinct CPF trees (paper: 16)\n", len(all))
	t2, err := core.CPFify(optimal, h, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  with the paper's choices (ABC, then CDE, EFG, GHA):")
	fmt.Println(indent(t2.Render(h)))
	fmt.Println()

	// ——— Example 6 / Figure 4: Algorithm 2 ———
	fmt.Println("Example 6 / Figure 4 — Algorithm 2 derives the program")
	d, err := core.Derive(t2, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(indent(d.Program.String()))
	res, err := d.Program.Apply(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  cost(P(D)) = %d  (paper: < 2·10^{4k} = 2·10^4); output correct: %v\n",
		res.Cost, res.Output.Equal(full))
	fmt.Printf("  Theorem 2: %d < r(a+5)·cost(E(D)) = %d·%d = %d\n",
		res.Cost, d.QuasiFactor, optimal.Cost(db), d.QuasiFactor*optimal.Cost(db))
}

func indent(s string) string {
	out := "  "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "  "
		}
	}
	return out
}
