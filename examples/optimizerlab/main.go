// Optimizerlab compares the join-order search strategies the paper's
// related work uses — exact dynamic programming over each search space,
// greedy smallest-intermediate, iterative improvement, simulated annealing,
// and a System-R-style estimator — on random cyclic schemes, reporting each
// method's cost relative to the true optimum.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/optimizer"
	"repro/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 7, "random seed")
	instances := flag.Int("n", 5, "number of random instances")
	relations := flag.Int("relations", 6, "relations per scheme")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "instance\toptimal\tCPF DP\tlinear DP\tgreedy\titer.improve\tsim.anneal\testimator")

	for i := 0; i < *instances; i++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: *relations, Attrs: *relations + 1, MaxArity: 3, Connected: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		db, err := workload.RandomDatabase(rng, h, 25, 3)
		if err != nil {
			log.Fatal(err)
		}
		cat := optimizer.NewCatalog(db, 0)
		opt, err := optimizer.Optimal(cat, optimizer.SpaceAll)
		if err != nil {
			log.Fatal(err)
		}
		rel := func(p optimizer.Plan, err error) string {
			if err != nil {
				return "—"
			}
			return fmt.Sprintf("%.2f", float64(p.Cost)/float64(opt.Cost))
		}
		est, err := optimizer.EstimatedOptimal(db, optimizer.SpaceCPF)
		estCell := "—"
		if err == nil {
			if trueCost, cerr := optimizer.CostOf(cat, est.Tree); cerr == nil {
				estCell = fmt.Sprintf("%.2f", float64(trueCost)/float64(opt.Cost))
			}
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			h, opt.Cost,
			rel(optimizer.Optimal(cat, optimizer.SpaceCPF)),
			rel(optimizer.Optimal(cat, optimizer.SpaceLinear)),
			rel(optimizer.Greedy(cat, false)),
			rel(optimizer.IterativeImprovement(cat, rng, 10)),
			rel(optimizer.SimulatedAnnealing(cat, rng, optimizer.AnnealOptions{})),
			estCell)
	}
	w.Flush()
	fmt.Println("\ncells are cost(method)/cost(optimal); 1.00 means the method found an optimum")
	fmt.Println("CPF DP ≥ 1.00 quantifies what the avoid-Cartesian-products heuristic gives up on each instance")
}
