// Cyclequery sweeps the Example-3 family and prints, for each scale, the
// cost of the optimal join expression, the cheapest Cartesian-product-free
// and linear expressions, and the program Algorithms 1+2 derive — the
// paper's headline separation, measured.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

func main() {
	maxQ := flag.Int64("maxq", 20, "largest (even) scale to measure")
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "q\toptimal\tcheapest CPF\tcheapest linear\tprogram\tCPF/opt\tprog/opt")
	for q := int64(6); q <= *maxQ; q += 4 {
		spec, err := workload.Example3(q)
		if err != nil {
			log.Fatal(err)
		}
		db, err := spec.CycleDatabase()
		if err != nil {
			log.Fatal(err)
		}
		cat := optimizer.NewCatalog(db, 0)
		opt, err := optimizer.Optimal(cat, optimizer.SpaceAll)
		if err != nil {
			log.Fatal(err)
		}
		cpf, err := optimizer.Optimal(cat, optimizer.SpaceCPF)
		if err != nil {
			log.Fatal(err)
		}
		lin, err := optimizer.Optimal(cat, optimizer.SpaceLinear)
		if err != nil {
			log.Fatal(err)
		}
		h := hypergraph.OfScheme(db)
		d, err := core.DeriveFromTree(opt.Tree, h, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := d.Program.Apply(db)
		if err != nil {
			log.Fatal(err)
		}
		if res.Output.Len() != 1 {
			log.Fatalf("q=%d: program computed %d tuples, want 1", q, res.Output.Len())
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.2f\t%.2f\n",
			q, opt.Cost, cpf.Cost, lin.Cost, res.Cost,
			float64(cpf.Cost)/float64(opt.Cost), float64(int64(res.Cost))/float64(opt.Cost))
	}
	w.Flush()

	fmt.Println("\nThe CPF/opt ratio grows linearly in q (the paper's unbounded gap);")
	fmt.Println("the derived program tracks — and below the crossover even beats — the optimal expression.")
	fmt.Println("Closed-form costs for the paper's own scales (q = 10^k):")
	for _, q := range []int64{10, 100, 1000} {
		spec, err := workload.Example3(q)
		if err != nil {
			log.Fatal(err)
		}
		sizer, err := spec.AnalyticSizer()
		if err != nil {
			log.Fatal(err)
		}
		opt, err := optimizer.Optimal(sizer, optimizer.SpaceAll)
		if err != nil {
			log.Fatal(err)
		}
		cpf, err := optimizer.Optimal(sizer, optimizer.SpaceCPF)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  q=%-5d optimal=%-16d (paper: < 10^{4k+1})  cheapest CPF=%-18d (paper: > 2·10^{5k})\n",
			q, opt.Cost, cpf.Cost)
	}
}
