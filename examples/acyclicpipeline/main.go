// Acyclicpipeline demonstrates the classical machinery the paper builds on
// (§1): on an acyclic scheme, a full reducer (semijoin program) removes all
// dangling tuples, a monotone join expression then never overshoots the
// final join, and Yannakakis' algorithm computes project-join queries
// polynomially. On the paper's pairwise-consistent cyclic data, none of
// this helps — which is exactly why the paper derives programs instead.
package main

import (
	"fmt"
	"log"

	"repro/internal/acyclic"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	// A 4-relation chain x0–x1–x2–x3–x4 with dangling tuples that join with
	// nothing.
	db, err := workload.DanglingChainDatabase(4, 12, 6)
	if err != nil {
		log.Fatal(err)
	}
	h := hypergraph.OfScheme(db)
	fmt.Println("scheme:", h, " acyclic:", h.Acyclic())
	fmt.Println("database:", db)

	// The full reducer as a program of in-place semijoins.
	reducer, jt, err := acyclic.FullReducer(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfull reducer (Bernstein–Goodman):")
	fmt.Println(reducer)

	reduced, cost, err := acyclic.Reduce(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreduced: %s (cost %d)\n", reduced, cost)
	fmt.Println("globally consistent after reduction:", reduced.GloballyConsistent())

	// Monotone join expression: intermediates never exceed the output.
	tree := acyclic.MonotoneTree(jt)
	fmt.Println("\nmonotone join expression:", tree.String(h))
	out, joinCost := tree.Eval(reduced)
	fmt.Printf("join: %d tuples, monotone evaluation cost %d\n", out.Len(), joinCost)

	// Yannakakis for a projection: endpoints of the chain.
	proj := relation.NewAttrSet("x0", "x4")
	res, ycost, err := acyclic.Yannakakis(db, proj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nYannakakis π_%s(⋈D): %d tuples, cost %d\n", proj, res.Len(), ycost)

	// Contrast: the paper's pairwise-consistent data defeats semijoins.
	spec := workload.UniformCycle(4, 3, 3)
	cyc, err := spec.CycleDatabase()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n— the cyclic contrast —")
	if _, _, err := acyclic.Reduce(cyc); err != nil {
		fmt.Println("full reducer on the 4-cycle scheme:", err)
	}
	path, err := cyc.Restrict([]int{0, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	pathReduced, _, err := acyclic.Reduce(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acyclic restriction ABC CDE EFG: %d tuples before, %d after — the reducer removed nothing\n",
		path.TotalTuples(), pathReduced.TotalTuples())
	fmt.Printf("yet ⋈D of the full cycle has %d tuple(s): semijoins cannot see global inconsistency\n",
		cyc.Join().Len())
}
