// Quickstart walks the paper's running example end to end: the cyclic
// scheme {ABC, CDE, EFG, GHA}, a database on which the natural join has a
// single tuple, an optimal but Cartesian-product-bearing join expression,
// Algorithm 1 to remove the products, and Algorithm 2 to derive a
// join/semijoin/projection program that computes ⋈D at a cost comparable to
// the optimal expression.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/workload"
)

func main() {
	// The paper's database scheme, as a hypergraph: attributes are nodes,
	// relation schemes are hyperedges.
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scheme:", h)
	fmt.Println("connected:", h.Connected(h.Full()), " acyclic:", h.Acyclic())

	// An Example-3-style database: pairwise consistent, but the join has
	// exactly one tuple.
	spec, err := workload.Example3(10)
	if err != nil {
		log.Fatal(err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndatabase:", db)
	fmt.Println("pairwise consistent:", db.PairwiseConsistent())
	full := db.Join()
	fmt.Println("⋈D:", full)

	// The optimal join expression pairs the opposite (attribute-disjoint)
	// relations: both inner joins are Cartesian products.
	t1 := jointree.MustParse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	fmt.Println("\noptimal expression:", t1.String(h))
	fmt.Println("CPF:", t1.IsCPF(h), " Cartesian products:", len(t1.CartesianProducts(h)))
	_, t1Cost := t1.Eval(db)
	fmt.Println("cost(T1(D)):", t1Cost)

	// Algorithm 1: an equivalent Cartesian-product-free tree.
	t2, err := core.CPFify(t1, h, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAlgorithm 1 output:", t2.String(h))
	fmt.Println(t2.Render(h))
	_, t2Cost := t2.Eval(db)
	fmt.Println("cost(T2(D)):", t2Cost, " — evaluating the CPF tree directly is worse")

	// Algorithm 2: derive a program from the CPF tree.
	d, err := core.Derive(t2, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAlgorithm 2 program:")
	fmt.Println(d.Program)

	res, err := d.Program.Apply(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprogram output equals ⋈D:", res.Output.Equal(full))
	fmt.Printf("cost(P(D)) = %d  vs  cost(T1(D)) = %d, bound r(a+5)·cost(T1(D)) = %d\n",
		res.Cost, t1Cost, d.QuasiFactor*t1Cost)
	fmt.Printf("the program costs %.2f× the optimal expression (Theorem 2 guarantees < %d×)\n",
		float64(res.Cost)/float64(t1Cost), d.QuasiFactor)
}
