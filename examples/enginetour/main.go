// Enginetour drives the engine facade — the library surface a downstream
// user would call — across three characteristic workloads, printing each
// strategy's EXPLAIN report: the paper's adversarial cycle (the program
// route wins), a star join with dangling keys (the acyclic pipeline
// applies), and a skewed cyclic instance (where estimators would go wrong
// but exact search doesn't).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	section("1. The paper's adversarial cycle (Example 3, q = 10)")
	spec, err := workload.Example3(10)
	if err != nil {
		log.Fatal(err)
	}
	cycle, err := spec.CycleDatabase()
	if err != nil {
		log.Fatal(err)
	}
	runAll(cycle, []engine.Strategy{
		engine.StrategyDirect,
		engine.StrategyExpression,
		engine.StrategyReduceThenJoin,
		engine.StrategyProgram,
	})

	section("2. Star join with dangling foreign keys (acyclic)")
	rng := rand.New(rand.NewSource(7))
	star, err := workload.StarJoin(rng, workload.StarJoinSpec{
		Dimensions: 3,
		FactRows:   500,
		DimRows:    []int{40, 25, 10},
		MissRate:   0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	runAll(star, []engine.Strategy{
		engine.StrategyAuto, // picks the acyclic pipeline
		engine.StrategyProgram,
	})

	section("3. Skewed (Zipf) cyclic data")
	h, err := workload.UniformCycle(5, 3, 2).CycleScheme()
	if err != nil {
		log.Fatal(err)
	}
	skew, err := workload.ZipfDatabase(rng, h, 120, 30, 1.4)
	if err != nil {
		log.Fatal(err)
	}
	runAll(skew, []engine.Strategy{
		engine.StrategyExpression,
		engine.StrategyProgram,
	})
}

func section(title string) {
	fmt.Println()
	fmt.Println("══ " + title + " ══")
}

func runAll(db *relation.Database, strategies []engine.Strategy) {
	fmt.Println("database:", db)
	for _, s := range strategies {
		rep, err := engine.Join(db, engine.Options{Strategy: s})
		if err != nil {
			fmt.Printf("\n[%s] not applicable: %v\n", s, err)
			continue
		}
		fmt.Println()
		fmt.Println(rep.Explain())
	}
}
