#!/usr/bin/env bash
# Smoke test for joind: build it, start it with a durable data directory,
# register the triangle example database, run queries, ingest a batch, and
# assert the observability surface recorded all of it — then exercise both
# shutdown paths: a graceful SIGTERM restart (clean checkpoint, zero WAL
# replay) and a kill -9 restart (WAL replay recovers the last ingest). CI
# runs this after the unit tests; it is also handy locally:
#
#   ./scripts/smoke_joind.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
DATA_DIR=$(mktemp -d /tmp/joind_smoke.XXXXXX)
JOIND_PID=""
trap 'kill -9 "$JOIND_PID" 2>/dev/null || true; rm -rf "$DATA_DIR"' EXIT

go build -o /tmp/joind ./cmd/joind

start_joind() {
    /tmp/joind -addr "$ADDR" -workers 2 -global-max-tuples 100000 \
        -slow-threshold 1ns -data-dir "$DATA_DIR" -fsync always "$@" &
    JOIND_PID=$!
}

# Poll readiness with bounded retry and exponential backoff: /readyz (and
# the readiness-gated /healthz) answer 503 "recovering" until the store has
# replayed its snapshot + WAL tail.
wait_ready() {
    local delay=0.05 attempt
    for attempt in $(seq 1 40); do
        if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep "$delay"
        delay=$(awk -v d="$delay" 'BEGIN { d = d * 1.5; if (d > 1) d = 1; print d }')
    done
    echo "joind did not become ready after $attempt attempts" >&2
    return 1
}

start_joind
wait_ready
# Liveness must answer too (it was already up during recovery).
curl -fsS "$BASE/livez" >/dev/null
curl -fsS "$BASE/healthz" >/dev/null

# Register the triangle example database (persisted to the data dir).
code=$(curl -sS -o /tmp/joind_register.json -w '%{http_code}' \
    -X POST "$BASE/v1/databases" \
    -H 'Content-Type: application/json' \
    --data @examples/joind/triangle.json)
if [ "$code" != "201" ]; then
    echo "register: expected 201, got $code:" >&2
    cat /tmp/joind_register.json >&2
    exit 1
fi

# Register a continuous query (materialized view) over it: built immediately,
# maintained incrementally on every ingest below, durable across restarts.
code=$(curl -sS -o /tmp/joind_view.json -w '%{http_code}' \
    -X POST "$BASE/v1/views" \
    -H 'Content-Type: application/json' \
    -d '{"id":"tri-view","database":"triangle"}')
if [ "$code" != "201" ]; then
    echo "view register: expected 201, got $code:" >&2
    cat /tmp/joind_view.json >&2
    exit 1
fi
grep -q '"result_count":3' /tmp/joind_view.json || {
    echo "view register: expected the initial build to hold 3 tuples:" >&2
    cat /tmp/joind_view.json >&2
    exit 1
}

# Query it twice: both must be 200 with a nonempty result, and the second
# must be a plan-cache hit.
query() {
    curl -sS -o "$1" -w '%{http_code}' \
        -X POST "$BASE/v1/query" \
        -H 'Content-Type: application/json' \
        -d '{"database":"triangle","include_result":true}'
}
for out in /tmp/joind_query1.json /tmp/joind_query2.json; do
    code=$(query "$out")
    if [ "$code" != "200" ]; then
        echo "query: expected 200, got $code:" >&2
        cat "$out" >&2
        exit 1
    fi
    grep -q '"result_count":3' "$out" || {
        echo "query: expected a nonempty result (result_count 3):" >&2
        cat "$out" >&2
        exit 1
    }
done
grep -q '"cache_hit":true' /tmp/joind_query2.json || {
    echo "second query was not a plan-cache hit:" >&2
    cat /tmp/joind_query2.json >&2
    exit 1
}

# Columnar strategy end-to-end: same result through the vectorized batch
# kernels, cached under its own fingerprint#strategy key (a fresh miss).
code=$(curl -sS -o /tmp/joind_query_columnar.json -w '%{http_code}' \
    -X POST "$BASE/v1/query" \
    -H 'Content-Type: application/json' \
    -d '{"database":"triangle","strategy":"columnar","include_result":true}')
if [ "$code" != "200" ]; then
    echo "columnar query: expected 200, got $code:" >&2
    cat /tmp/joind_query_columnar.json >&2
    exit 1
fi
grep -q '"result_count":3' /tmp/joind_query_columnar.json || {
    echo "columnar query: expected result_count 3:" >&2
    cat /tmp/joind_query_columnar.json >&2
    exit 1
}
grep -q '"strategy":"columnar"' /tmp/joind_query_columnar.json || {
    echo "columnar query: response does not report the columnar strategy:" >&2
    cat /tmp/joind_query_columnar.json >&2
    exit 1
}

# Stats must show the hit too, and surface the durable/view counters at the
# top level.
curl -fsS "$BASE/v1/stats" >/tmp/joind_stats.json
grep -q '"hits":1' /tmp/joind_stats.json || {
    echo "stats did not record the plan-cache hit" >&2
    exit 1
}
for field in '"wal_records":' '"snapshots":' '"invalidations":' '"views":1'; do
    grep -q "$field" /tmp/joind_stats.json || {
        echo "stats: missing expected field $field:" >&2
        cat /tmp/joind_stats.json >&2
        exit 1
    }
done

# With the slow log enabled, query responses carry trace IDs.
grep -q '"trace_id":"' /tmp/joind_query1.json || {
    echo "query response has no trace_id despite -slow-threshold:" >&2
    cat /tmp/joind_query1.json >&2
    exit 1
}

# Durable ingest: add a disjoint triangle (10,11,12) as one atomic batch.
# The join gains exactly one row, and the cached plan is invalidated.
code=$(curl -sS -o /tmp/joind_ingest.json -w '%{http_code}' \
    -X POST "$BASE/v1/ingest" \
    -H 'Content-Type: application/json' \
    -d '{"database":"triangle","mutations":[
          {"relation":0,"inserts":[[10,11]]},
          {"relation":1,"inserts":[[11,12]]},
          {"relation":2,"inserts":[[12,10]]}]}')
if [ "$code" != "200" ]; then
    echo "ingest: expected 200, got $code:" >&2
    cat /tmp/joind_ingest.json >&2
    exit 1
fi
grep -q '"inserted":3' /tmp/joind_ingest.json || {
    echo "ingest: expected 3 effective inserts:" >&2
    cat /tmp/joind_ingest.json >&2
    exit 1
}
grep -q '"views_maintained":1' /tmp/joind_ingest.json || {
    echo "ingest: expected the batch to maintain 1 view:" >&2
    cat /tmp/joind_ingest.json >&2
    exit 1
}
# The view was delta-maintained before the batch was acknowledged: it already
# serves the new triangle, with exactly one delta batch applied.
curl -fsS "$BASE/v1/views/tri-view" >/tmp/joind_view2.json
grep -q '"result_count":4' /tmp/joind_view2.json || {
    echo "view after ingest: expected result_count 4:" >&2
    cat /tmp/joind_view2.json >&2
    exit 1
}
grep -q '"delta_batches":1' /tmp/joind_view2.json || {
    echo "view after ingest: expected delta_batches 1 (no rebuild):" >&2
    cat /tmp/joind_view2.json >&2
    exit 1
}
code=$(query /tmp/joind_query3.json)
if [ "$code" != "200" ] || ! grep -q '"result_count":4' /tmp/joind_query3.json; then
    echo "query after ingest: expected 200 with result_count 4 (got $code):" >&2
    cat /tmp/joind_query3.json >&2
    exit 1
fi

# /metrics must serve valid Prometheus text with the core series moved by
# the queries and the ingest above.
curl -fsS "$BASE/metrics" >/tmp/joind_metrics.txt
for series in \
    'joind_query_duration_seconds_count 4' \
    'joind_queue_wait_seconds_count 4' \
    'joind_plan_cache_misses_total 3' \
    'joind_registered_databases 1' \
    'joind_slow_queries_total 4' \
    'joind_queries_total{strategy="columnar",status="ok"} 1' \
    'joind_columnar_tuples_total' \
    'joind_tuples_produced_total' \
    'joind_worker_utilization' \
    'joind_tuple_budget_remaining' \
    'joind_store_attached 1' \
    'joind_ingests_total{status="ok"} 1' \
    'joind_ingest_duration_seconds_count 1' \
    'joind_wal_appends_total 1' \
    'joind_wal_bytes_total' \
    'joind_snapshot_writes_total' \
    'joind_plan_cache_invalidations_total 2' \
    'joind_views_registered 1' \
    'joind_views_stale 0' \
    'joind_view_delta_batches_total 1' \
    'joind_view_delta_tuples_in_total 3' \
    'joind_view_full_rebuilds_total 1' \
    'joind_view_maintenance_seconds_count 1' \
    'joind_recovery_replayed_records 0'; do
    grep -qF "$series" /tmp/joind_metrics.txt || {
        echo "metrics: missing expected series/sample: $series" >&2
        cat /tmp/joind_metrics.txt >&2
        exit 1
    }
done
# Every non-comment line must be exactly "name{labels} value".
if awk '!/^#/ && NF != 2 { bad = 1 } END { exit bad }' /tmp/joind_metrics.txt; then
    :
else
    echo "metrics: malformed exposition line" >&2
    cat /tmp/joind_metrics.txt >&2
    exit 1
fi

# /v1/slow must have captured the queries (1ns threshold = everything),
# with embedded span trees.
curl -fsS "$BASE/v1/slow" >/tmp/joind_slow.json
grep -q '"enabled":true' /tmp/joind_slow.json || {
    echo "/v1/slow reports the log disabled" >&2
    cat /tmp/joind_slow.json >&2
    exit 1
}
grep -q '"recorded":4' /tmp/joind_slow.json || {
    echo "/v1/slow did not capture all four queries:" >&2
    cat /tmp/joind_slow.json >&2
    exit 1
}
grep -q '"kind":"query"' /tmp/joind_slow.json || {
    echo "/v1/slow entries have no span trees:" >&2
    cat /tmp/joind_slow.json >&2
    exit 1
}

# Graceful restart: SIGTERM flushes the WAL and writes a clean checkpoint,
# so the next start recovers the full catalog with zero WAL replay.
kill -TERM "$JOIND_PID"
wait "$JOIND_PID" || {
    echo "joind did not exit cleanly on SIGTERM" >&2
    exit 1
}
start_joind
wait_ready
code=$(query /tmp/joind_query4.json)
if [ "$code" != "200" ] || ! grep -q '"result_count":4' /tmp/joind_query4.json; then
    echo "query after graceful restart: expected 200 with result_count 4 (got $code):" >&2
    cat /tmp/joind_query4.json >&2
    exit 1
fi
curl -fsS "$BASE/metrics" | grep -qF 'joind_recovery_replayed_records 0' || {
    echo "graceful restart: expected zero WAL replay (clean final checkpoint)" >&2
    exit 1
}
# The view definition is durable: recovered, rebuilt, and current.
curl -fsS "$BASE/v1/views/tri-view" >/tmp/joind_view3.json
grep -q '"result_count":4' /tmp/joind_view3.json || {
    echo "view after graceful restart: expected recovered view with result_count 4:" >&2
    cat /tmp/joind_view3.json >&2
    exit 1
}

# Crash restart: ingest another triangle (20,21,22), kill -9 before any
# checkpoint can run, and assert the restart replays the WAL record.
code=$(curl -sS -o /tmp/joind_ingest2.json -w '%{http_code}' \
    -X POST "$BASE/v1/ingest" \
    -H 'Content-Type: application/json' \
    -d '{"database":"triangle","mutations":[
          {"relation":0,"inserts":[[20,21]]},
          {"relation":1,"inserts":[[21,22]]},
          {"relation":2,"inserts":[[22,20]]}]}')
if [ "$code" != "200" ]; then
    echo "second ingest: expected 200, got $code:" >&2
    cat /tmp/joind_ingest2.json >&2
    exit 1
fi
kill -9 "$JOIND_PID"
wait "$JOIND_PID" 2>/dev/null || true
start_joind
wait_ready
code=$(query /tmp/joind_query5.json)
if [ "$code" != "200" ] || ! grep -q '"result_count":5' /tmp/joind_query5.json; then
    echo "query after crash restart: expected 200 with result_count 5 (got $code):" >&2
    cat /tmp/joind_query5.json >&2
    exit 1
fi
curl -fsS "$BASE/metrics" >/tmp/joind_metrics2.txt
grep -qF 'joind_recovery_replayed_records 1' /tmp/joind_metrics2.txt || {
    echo "crash restart: expected exactly one replayed WAL record:" >&2
    grep 'joind_recovery' /tmp/joind_metrics2.txt >&2 || true
    exit 1
}
# The recovered view reflects the replayed ingest.
curl -fsS "$BASE/v1/views/tri-view" >/tmp/joind_view4.json
grep -q '"result_count":5' /tmp/joind_view4.json || {
    echo "view after crash restart: expected recovered view with result_count 5:" >&2
    cat /tmp/joind_view4.json >&2
    exit 1
}

# Sharded execution round trip: restart the same data dir with a 4-shard
# in-process group. A negative broadcast threshold forces the triangle's
# R and T to partition (the smoke catalog is tiny, so the default
# size-based broadcast would swallow everything). Partitioning must be
# invisible to results, durable ingest, and views — and the
# joind_shard_* metrics must move.
kill -TERM "$JOIND_PID"
wait "$JOIND_PID" || {
    echo "joind did not exit cleanly on SIGTERM before sharded restart" >&2
    exit 1
}
start_joind -shards 4 -shard-broadcast-threshold -1
wait_ready
# Pin the columnar strategy: the auto-resolved program route is unclean on
# the triangle (BC never carries the partition attribute A), so it would
# fall back to single-shard execution; the columnar join tree scatters.
squery() {
    curl -sS -o "$1" -w '%{http_code}' \
        -X POST "$BASE/v1/query" \
        -H 'Content-Type: application/json' \
        -d '{"database":"triangle","strategy":"columnar","include_result":true}'
}
code=$(squery /tmp/joind_query6.json)
if [ "$code" != "200" ] || ! grep -q '"result_count":5' /tmp/joind_query6.json; then
    echo "sharded query: expected 200 with result_count 5 (got $code):" >&2
    cat /tmp/joind_query6.json >&2
    exit 1
fi
grep -q '"shards":4' /tmp/joind_query6.json || {
    echo "sharded query: response does not report scattering across 4 shards:" >&2
    cat /tmp/joind_query6.json >&2
    exit 1
}
# Durable ingest routes the batch to owning shards after the WAL append.
code=$(curl -sS -o /tmp/joind_ingest3.json -w '%{http_code}' \
    -X POST "$BASE/v1/ingest" \
    -H 'Content-Type: application/json' \
    -d '{"database":"triangle","mutations":[
          {"relation":0,"inserts":[[30,31]]},
          {"relation":1,"inserts":[[31,32]]},
          {"relation":2,"inserts":[[32,30]]}]}')
if [ "$code" != "200" ] || ! grep -q '"inserted":3' /tmp/joind_ingest3.json; then
    echo "sharded ingest: expected 200 with 3 effective inserts (got $code):" >&2
    cat /tmp/joind_ingest3.json >&2
    exit 1
fi
code=$(squery /tmp/joind_query7.json)
if [ "$code" != "200" ] || ! grep -q '"result_count":6' /tmp/joind_query7.json; then
    echo "sharded query after ingest: expected 200 with result_count 6 (got $code):" >&2
    cat /tmp/joind_query7.json >&2
    exit 1
fi
# The recovered continuous query was delta-maintained through the sharded
# ingest path too.
curl -fsS "$BASE/v1/views/tri-view" >/tmp/joind_view5.json
grep -q '"result_count":6' /tmp/joind_view5.json || {
    echo "view after sharded ingest: expected result_count 6:" >&2
    cat /tmp/joind_view5.json >&2
    exit 1
}
# The shard metrics must reflect the scatter and the routed ingest.
curl -fsS "$BASE/metrics" >/tmp/joind_metrics3.txt
grep -qF 'joind_shard_count 4' /tmp/joind_metrics3.txt || {
    echo "metrics: expected joind_shard_count 4:" >&2
    grep 'joind_shard' /tmp/joind_metrics3.txt >&2 || true
    exit 1
}
grep -qF 'joind_shard_remote_peers 0' /tmp/joind_metrics3.txt || {
    echo "metrics: expected joind_shard_remote_peers 0 (in-process group):" >&2
    grep 'joind_shard' /tmp/joind_metrics3.txt >&2 || true
    exit 1
}
for series in joind_shard_executions_total joind_shard_tuples_total \
    joind_shard_ingest_routed_tuples_total; do
    awk -v s="$series" '$1 == s && $2 > 0 { found = 1 } END { exit !found }' \
        /tmp/joind_metrics3.txt || {
        echo "metrics: expected $series > 0:" >&2
        grep 'joind_shard' /tmp/joind_metrics3.txt >&2 || true
        exit 1
    }
done
# Restart again, still sharded: the group rebuilds from the recovered
# catalog and serves the post-ingest state.
kill -TERM "$JOIND_PID"
wait "$JOIND_PID" || {
    echo "sharded joind did not exit cleanly on SIGTERM" >&2
    exit 1
}
start_joind -shards 4 -shard-broadcast-threshold -1
wait_ready
code=$(squery /tmp/joind_query8.json)
if [ "$code" != "200" ] || ! grep -q '"result_count":6' /tmp/joind_query8.json; then
    echo "sharded query after restart: expected 200 with result_count 6 (got $code):" >&2
    cat /tmp/joind_query8.json >&2
    exit 1
fi
grep -q '"shards":4' /tmp/joind_query8.json || {
    echo "sharded query after restart: response does not report 4 shards:" >&2
    cat /tmp/joind_query8.json >&2
    exit 1
}

echo "joind smoke: OK (ready gate, durable register + ingest, continuous query maintenance + recovery, cache hit, columnar strategy, metrics + slow log, SIGTERM clean restart, kill -9 WAL replay, 4-shard scatter round trip)"
