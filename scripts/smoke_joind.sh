#!/usr/bin/env bash
# Smoke test for joind: build it, start it, register the triangle example
# database, run one query, and assert a 200 with a nonempty result — then
# scrape /metrics and /v1/slow and assert the observability surface
# recorded the queries. CI runs this after the unit tests; it is also
# handy locally:
#
#   ./scripts/smoke_joind.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"

go build -o /tmp/joind ./cmd/joind
/tmp/joind -addr "$ADDR" -workers 2 -global-max-tuples 100000 -slow-threshold 1ns &
JOIND_PID=$!
trap 'kill "$JOIND_PID" 2>/dev/null || true' EXIT

# Wait for liveness.
for _ in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

# Register the triangle example database.
code=$(curl -sS -o /tmp/joind_register.json -w '%{http_code}' \
    -X POST "$BASE/v1/databases" \
    -H 'Content-Type: application/json' \
    --data @examples/joind/triangle.json)
if [ "$code" != "201" ]; then
    echo "register: expected 201, got $code:" >&2
    cat /tmp/joind_register.json >&2
    exit 1
fi

# Query it twice: both must be 200 with a nonempty result, and the second
# must be a plan-cache hit.
query() {
    curl -sS -o "$1" -w '%{http_code}' \
        -X POST "$BASE/v1/query" \
        -H 'Content-Type: application/json' \
        -d '{"database":"triangle","include_result":true}'
}
for out in /tmp/joind_query1.json /tmp/joind_query2.json; do
    code=$(query "$out")
    if [ "$code" != "200" ]; then
        echo "query: expected 200, got $code:" >&2
        cat "$out" >&2
        exit 1
    fi
    grep -q '"result_count":3' "$out" || {
        echo "query: expected a nonempty result (result_count 3):" >&2
        cat "$out" >&2
        exit 1
    }
done
grep -q '"cache_hit":true' /tmp/joind_query2.json || {
    echo "second query was not a plan-cache hit:" >&2
    cat /tmp/joind_query2.json >&2
    exit 1
}

# Stats must show the hit too.
curl -fsS "$BASE/v1/stats" | grep -q '"hits":1' || {
    echo "stats did not record the plan-cache hit" >&2
    exit 1
}

# With the slow log enabled, query responses carry trace IDs.
grep -q '"trace_id":"' /tmp/joind_query1.json || {
    echo "query response has no trace_id despite -slow-threshold:" >&2
    cat /tmp/joind_query1.json >&2
    exit 1
}

# /metrics must serve valid Prometheus text with the core series moved by
# the two queries above.
curl -fsS "$BASE/metrics" >/tmp/joind_metrics.txt
for series in \
    'joind_queries_total{strategy="program",status="ok"} 2' \
    'joind_query_duration_seconds_count 2' \
    'joind_queue_wait_seconds_count 2' \
    'joind_plan_cache_hits_total 1' \
    'joind_plan_cache_misses_total 1' \
    'joind_registered_databases 1' \
    'joind_slow_queries_total 2' \
    'joind_tuples_produced_total' \
    'joind_worker_utilization' \
    'joind_tuple_budget_remaining'; do
    grep -qF "$series" /tmp/joind_metrics.txt || {
        echo "metrics: missing expected series/sample: $series" >&2
        cat /tmp/joind_metrics.txt >&2
        exit 1
    }
done
# Every non-comment line must be exactly "name{labels} value".
if awk '!/^#/ && NF != 2 { bad = 1 } END { exit bad }' /tmp/joind_metrics.txt; then
    :
else
    echo "metrics: malformed exposition line" >&2
    cat /tmp/joind_metrics.txt >&2
    exit 1
fi

# /v1/slow must have captured both queries (1ns threshold = everything),
# with embedded span trees.
curl -fsS "$BASE/v1/slow" >/tmp/joind_slow.json
grep -q '"enabled":true' /tmp/joind_slow.json || {
    echo "/v1/slow reports the log disabled" >&2
    cat /tmp/joind_slow.json >&2
    exit 1
}
grep -q '"recorded":2' /tmp/joind_slow.json || {
    echo "/v1/slow did not capture both queries:" >&2
    cat /tmp/joind_slow.json >&2
    exit 1
}
grep -q '"kind":"query"' /tmp/joind_slow.json || {
    echo "/v1/slow entries have no span trees:" >&2
    cat /tmp/joind_slow.json >&2
    exit 1
}

echo "joind smoke: OK (register 201, two 200 queries, cache hit, metrics + slow log recorded)"
