#!/usr/bin/env bash
# Smoke test for joind: build it, start it, register the triangle example
# database, run one query, and assert a 200 with a nonempty result. CI runs
# this after the unit tests; it is also handy locally:
#
#   ./scripts/smoke_joind.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"

go build -o /tmp/joind ./cmd/joind
/tmp/joind -addr "$ADDR" -workers 2 -global-max-tuples 100000 &
JOIND_PID=$!
trap 'kill "$JOIND_PID" 2>/dev/null || true' EXIT

# Wait for liveness.
for _ in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

# Register the triangle example database.
code=$(curl -sS -o /tmp/joind_register.json -w '%{http_code}' \
    -X POST "$BASE/v1/databases" \
    -H 'Content-Type: application/json' \
    --data @examples/joind/triangle.json)
if [ "$code" != "201" ]; then
    echo "register: expected 201, got $code:" >&2
    cat /tmp/joind_register.json >&2
    exit 1
fi

# Query it twice: both must be 200 with a nonempty result, and the second
# must be a plan-cache hit.
query() {
    curl -sS -o "$1" -w '%{http_code}' \
        -X POST "$BASE/v1/query" \
        -H 'Content-Type: application/json' \
        -d '{"database":"triangle","include_result":true}'
}
for out in /tmp/joind_query1.json /tmp/joind_query2.json; do
    code=$(query "$out")
    if [ "$code" != "200" ]; then
        echo "query: expected 200, got $code:" >&2
        cat "$out" >&2
        exit 1
    fi
    grep -q '"result_count":3' "$out" || {
        echo "query: expected a nonempty result (result_count 3):" >&2
        cat "$out" >&2
        exit 1
    }
done
grep -q '"cache_hit":true' /tmp/joind_query2.json || {
    echo "second query was not a plan-cache hit:" >&2
    cat /tmp/joind_query2.json >&2
    exit 1
}

# Stats must show the hit too.
curl -fsS "$BASE/v1/stats" | grep -q '"hits":1' || {
    echo "stats did not record the plan-cache hit" >&2
    exit 1
}

echo "joind smoke: OK (register 201, two 200 queries, second was a cache hit)"
